//! Measurement data structures.
//!
//! Two layers of data come out of a ranging campaign:
//!
//! 1. [`RangingCampaign`] — every raw directed sample (`from` chirped, `to`
//!    measured) per round, before any filtering; this is what statistical
//!    filtering and consistency checking consume, and
//! 2. [`MeasurementSet`] — the final sparse, undirected, weighted distance
//!    graph handed to the localization algorithms. LSS explicitly tolerates
//!    `D ⊆ D_full` (missing pairs), which this structure represents
//!    natively.

use rl_net::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// One raw directed ranging sample: node `from` emitted the chirp train,
/// node `to` measured `measured_m`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DirectedSample {
    /// Chirping (source) node.
    pub from: NodeId,
    /// Receiving (measuring) node.
    pub to: NodeId,
    /// Measurement round index.
    pub round: usize,
    /// Measured distance, meters.
    pub measured_m: f64,
}

/// All raw samples of one ranging campaign plus ground truth for
/// evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RangingCampaign {
    /// Number of nodes in the deployment.
    pub n: usize,
    /// Ground-truth node positions (for evaluation only; the algorithms
    /// never see them).
    pub true_positions: Vec<rl_geom::Point2>,
    /// Every successful directed measurement.
    pub samples: Vec<DirectedSample>,
}

impl RangingCampaign {
    /// True distance between two nodes.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn true_distance(&self, a: NodeId, b: NodeId) -> f64 {
        self.true_positions[a.index()].distance(self.true_positions[b.index()])
    }

    /// Signed error of one sample (measured − actual), meters.
    pub fn error_of(&self, sample: &DirectedSample) -> f64 {
        sample.measured_m - self.true_distance(sample.from, sample.to)
    }

    /// All signed errors, for histogramming (Figures 2, 6).
    pub fn errors(&self) -> Vec<f64> {
        self.samples.iter().map(|s| self.error_of(s)).collect()
    }

    /// Groups samples by directed pair.
    pub fn by_directed_pair(&self) -> BTreeMap<(NodeId, NodeId), Vec<f64>> {
        let mut map: BTreeMap<(NodeId, NodeId), Vec<f64>> = BTreeMap::new();
        for s in &self.samples {
            map.entry((s.from, s.to)).or_default().push(s.measured_m);
        }
        map
    }
}

/// Sparse undirected distance graph with per-edge weights.
///
/// Edges are stored once under the ordered key `(min, max)`; lookups accept
/// either orientation. Weights default to 1 and feed LSS's weighted stress
/// function `E_w`.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasurementSet {
    n: usize,
    edges: BTreeMap<(usize, usize), Edge>,
    adjacency: Vec<BTreeSet<usize>>,
}

/// JSON-friendly representation (tuple map keys are not valid JSON keys).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct MeasurementSetRepr {
    n: usize,
    edges: Vec<(usize, usize, f64, f64)>,
}

impl From<MeasurementSet> for MeasurementSetRepr {
    fn from(set: MeasurementSet) -> Self {
        MeasurementSetRepr {
            n: set.n,
            edges: set
                .edges
                .iter()
                .map(|(&(a, b), e)| (a, b, e.distance, e.weight))
                .collect(),
        }
    }
}

impl From<MeasurementSetRepr> for MeasurementSet {
    fn from(repr: MeasurementSetRepr) -> Self {
        let mut set = MeasurementSet::new(repr.n);
        for (a, b, d, w) in repr.edges {
            set.insert_weighted(NodeId(a), NodeId(b), d, w);
        }
        set
    }
}

// Serialized through `MeasurementSetRepr` (tuple map keys are not valid
// JSON object keys), mirroring `#[serde(into/from)]`.
impl Serialize for MeasurementSet {
    fn to_value(&self) -> serde::Value {
        MeasurementSetRepr {
            n: self.n,
            edges: self
                .edges
                .iter()
                .map(|(&(a, b), e)| (a, b, e.distance, e.weight))
                .collect(),
        }
        .to_value()
    }
}

impl Deserialize for MeasurementSet {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        MeasurementSetRepr::from_value(value).map(MeasurementSet::from)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct Edge {
    distance: f64,
    weight: f64,
}

impl MeasurementSet {
    /// Creates an empty measurement set over `n` nodes.
    pub fn new(n: usize) -> Self {
        MeasurementSet {
            n,
            edges: BTreeMap::new(),
            adjacency: vec![BTreeSet::new(); n],
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of measured pairs.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether no pair has a measurement.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    fn key(a: NodeId, b: NodeId) -> (usize, usize) {
        let (x, y) = (a.index(), b.index());
        (x.min(y), x.max(y))
    }

    /// Inserts (or replaces) the measured distance for a pair with weight 1.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`, either id is out of range, or the distance is
    /// negative/not finite.
    pub fn insert(&mut self, a: NodeId, b: NodeId, distance_m: f64) {
        self.insert_weighted(a, b, distance_m, 1.0);
    }

    /// Inserts (or replaces) the measured distance with an explicit weight.
    ///
    /// # Panics
    ///
    /// Same conditions as [`MeasurementSet::insert`], plus non-positive
    /// weights.
    pub fn insert_weighted(&mut self, a: NodeId, b: NodeId, distance_m: f64, weight: f64) {
        assert!(a != b, "self-distance for {a} is meaningless");
        assert!(
            a.index() < self.n && b.index() < self.n,
            "node out of range: {a}, {b} (n = {})",
            self.n
        );
        assert!(
            distance_m.is_finite() && distance_m >= 0.0,
            "distance must be finite and non-negative, got {distance_m}"
        );
        assert!(weight > 0.0, "weight must be positive, got {weight}");
        self.edges.insert(
            Self::key(a, b),
            Edge {
                distance: distance_m,
                weight,
            },
        );
        self.adjacency[a.index()].insert(b.index());
        self.adjacency[b.index()].insert(a.index());
    }

    /// The measured distance for a pair, in either orientation.
    pub fn get(&self, a: NodeId, b: NodeId) -> Option<f64> {
        if a == b {
            return None;
        }
        self.edges.get(&Self::key(a, b)).map(|e| e.distance)
    }

    /// The weight of a measured pair.
    pub fn weight(&self, a: NodeId, b: NodeId) -> Option<f64> {
        if a == b {
            return None;
        }
        self.edges.get(&Self::key(a, b)).map(|e| e.weight)
    }

    /// Whether the pair has a measurement.
    pub fn contains(&self, a: NodeId, b: NodeId) -> bool {
        self.get(a, b).is_some()
    }

    /// Removes a pair's measurement; returns the removed distance.
    pub fn remove(&mut self, a: NodeId, b: NodeId) -> Option<f64> {
        if a == b || a.index() >= self.n || b.index() >= self.n {
            return None;
        }
        let removed = self.edges.remove(&Self::key(a, b)).map(|e| e.distance);
        if removed.is_some() {
            self.adjacency[a.index()].remove(&b.index());
            self.adjacency[b.index()].remove(&a.index());
        }
        removed
    }

    /// Iterates over `(a, b, distance)` with `a < b`.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        self.edges
            .iter()
            .map(|(&(a, b), e)| (NodeId(a), NodeId(b), e.distance))
    }

    /// Iterates over `(a, b, distance, weight)` with `a < b`.
    pub fn iter_weighted(&self) -> impl Iterator<Item = (NodeId, NodeId, f64, f64)> + '_ {
        self.edges
            .iter()
            .map(|(&(a, b), e)| (NodeId(a), NodeId(b), e.distance, e.weight))
    }

    /// Measured neighbors of `node` with distances.
    pub fn neighbors_of(&self, node: NodeId) -> Vec<(NodeId, f64)> {
        let Some(adj) = self.adjacency.get(node.index()) else {
            return Vec::new();
        };
        adj.iter()
            .map(|&j| {
                let d = self
                    .get(node, NodeId(j))
                    .expect("adjacency is consistent with edges");
                (NodeId(j), d)
            })
            .collect()
    }

    /// Node degree (number of measured neighbors).
    pub fn degree(&self, node: NodeId) -> usize {
        self.adjacency
            .get(node.index())
            .map(BTreeSet::len)
            .unwrap_or(0)
    }

    /// Mean degree over all nodes.
    pub fn average_degree(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        2.0 * self.len() as f64 / self.n as f64
    }

    /// Extracts the sub-measurement-set induced by `nodes`; returns the set
    /// (re-indexed `0..nodes.len()`) plus the mapping from new index to the
    /// original [`NodeId`].
    ///
    /// Used by distributed LSS, where each node localizes only itself and
    /// its ranging neighbors. Extraction walks the induced nodes'
    /// adjacency lists — `O(cluster edges)` lookups — rather than
    /// scanning the whole edge map, so carving `n` per-node clusters out
    /// of a metro-scale set costs `O(Σ cluster edges)` total instead of
    /// `O(n · total edges)`.
    pub fn subgraph(&self, nodes: &[NodeId]) -> (MeasurementSet, Vec<NodeId>) {
        let mapping: Vec<NodeId> = nodes.to_vec();
        let index_of: BTreeMap<usize, usize> = nodes
            .iter()
            .enumerate()
            .map(|(new, old)| (old.index(), new))
            .collect();
        let mut sub = MeasurementSet::new(nodes.len());
        for (&old, &ia) in &index_of {
            let Some(adj) = self.adjacency.get(old) else {
                continue;
            };
            for &other in adj {
                // Each induced edge is visited from both endpoints; keep
                // the `old < other` orientation so it is inserted once.
                if other <= old {
                    continue;
                }
                if let Some(&ib) = index_of.get(&other) {
                    let edge = self.edges[&(old, other)];
                    sub.insert_weighted(NodeId(ia), NodeId(ib), edge.distance, edge.weight);
                }
            }
        }
        (sub, mapping)
    }

    /// The connectivity topology of the measurement graph.
    pub fn topology(&self) -> rl_net::Topology {
        rl_net::Topology::from_edges(
            self.n,
            self.edges.keys().map(|&(a, b)| (NodeId(a), NodeId(b))),
        )
    }

    /// Builds the set of exact pairwise distances for all pairs closer than
    /// `max_range` (an oracle measurement set, useful for tests and ideal
    /// baselines).
    pub fn oracle(positions: &[rl_geom::Point2], max_range: f64) -> Self {
        let mut set = MeasurementSet::new(positions.len());
        for i in 0..positions.len() {
            for j in (i + 1)..positions.len() {
                let d = positions[i].distance(positions[j]);
                if d <= max_range {
                    set.insert(NodeId(i), NodeId(j), d);
                }
            }
        }
        set
    }
}

impl Extend<(NodeId, NodeId, f64)> for MeasurementSet {
    fn extend<T: IntoIterator<Item = (NodeId, NodeId, f64)>>(&mut self, iter: T) {
        for (a, b, d) in iter {
            self.insert(a, b, d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rl_geom::Point2;

    fn id(i: usize) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn insert_get_either_orientation() {
        let mut set = MeasurementSet::new(4);
        set.insert(id(2), id(0), 5.5);
        assert_eq!(set.get(id(0), id(2)), Some(5.5));
        assert_eq!(set.get(id(2), id(0)), Some(5.5));
        assert_eq!(set.get(id(0), id(1)), None);
        assert_eq!(set.get(id(1), id(1)), None);
        assert!(set.contains(id(0), id(2)));
        assert_eq!(set.len(), 1);
        assert!(!set.is_empty());
    }

    #[test]
    fn insert_replaces() {
        let mut set = MeasurementSet::new(2);
        set.insert(id(0), id(1), 5.0);
        set.insert(id(1), id(0), 6.0);
        assert_eq!(set.get(id(0), id(1)), Some(6.0));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn weights_default_and_explicit() {
        let mut set = MeasurementSet::new(3);
        set.insert(id(0), id(1), 5.0);
        set.insert_weighted(id(1), id(2), 7.0, 0.25);
        assert_eq!(set.weight(id(0), id(1)), Some(1.0));
        assert_eq!(set.weight(id(2), id(1)), Some(0.25));
        assert_eq!(set.weight(id(0), id(2)), None);
    }

    #[test]
    #[should_panic(expected = "self-distance")]
    fn self_edge_panics() {
        MeasurementSet::new(2).insert(id(1), id(1), 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        MeasurementSet::new(2).insert(id(0), id(5), 1.0);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn negative_distance_panics() {
        MeasurementSet::new(2).insert(id(0), id(1), -1.0);
    }

    #[test]
    fn remove_updates_adjacency() {
        let mut set = MeasurementSet::new(3);
        set.insert(id(0), id(1), 5.0);
        set.insert(id(1), id(2), 6.0);
        assert_eq!(set.degree(id(1)), 2);
        assert_eq!(set.remove(id(1), id(0)), Some(5.0));
        assert_eq!(set.remove(id(1), id(0)), None);
        assert_eq!(set.degree(id(1)), 1);
        assert_eq!(set.neighbors_of(id(1)), vec![(id(2), 6.0)]);
        assert_eq!(set.remove(id(2), id(2)), None);
    }

    #[test]
    fn neighbors_and_degrees() {
        let mut set = MeasurementSet::new(4);
        set.insert(id(0), id(1), 1.0);
        set.insert(id(0), id(2), 2.0);
        set.insert(id(0), id(3), 3.0);
        let nbrs = set.neighbors_of(id(0));
        assert_eq!(nbrs, vec![(id(1), 1.0), (id(2), 2.0), (id(3), 3.0)]);
        assert_eq!(set.degree(id(0)), 3);
        assert_eq!(set.degree(id(3)), 1);
        assert!((set.average_degree() - 1.5).abs() < 1e-12);
        assert!(set.neighbors_of(id(9)).is_empty());
    }

    #[test]
    fn iter_orders_pairs() {
        let mut set = MeasurementSet::new(3);
        set.insert(id(2), id(1), 5.0);
        set.insert(id(1), id(0), 4.0);
        let pairs: Vec<_> = set.iter().collect();
        assert_eq!(pairs, vec![(id(0), id(1), 4.0), (id(1), id(2), 5.0)]);
        let weighted: Vec<_> = set.iter_weighted().collect();
        assert_eq!(weighted[0], (id(0), id(1), 4.0, 1.0));
    }

    #[test]
    fn subgraph_reindexes() {
        let mut set = MeasurementSet::new(5);
        set.insert(id(1), id(3), 7.0);
        set.insert(id(3), id(4), 8.0);
        set.insert(id(0), id(1), 9.0);
        let (sub, mapping) = set.subgraph(&[id(1), id(3), id(4)]);
        assert_eq!(mapping, vec![id(1), id(3), id(4)]);
        assert_eq!(sub.node_count(), 3);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.get(id(0), id(1)), Some(7.0)); // 1-3 remapped
        assert_eq!(sub.get(id(1), id(2)), Some(8.0)); // 3-4 remapped
    }

    #[test]
    fn oracle_respects_max_range() {
        let positions = [
            Point2::new(0.0, 0.0),
            Point2::new(10.0, 0.0),
            Point2::new(40.0, 0.0),
        ];
        let set = MeasurementSet::oracle(&positions, 22.0);
        assert_eq!(set.get(id(0), id(1)), Some(10.0));
        assert_eq!(set.get(id(1), id(2)), None); // 30 m > 22 m
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn topology_reflects_edges() {
        let mut set = MeasurementSet::new(3);
        set.insert(id(0), id(1), 5.0);
        let topo = set.topology();
        assert!(topo.are_neighbors(id(0), id(1)));
        assert!(!topo.are_neighbors(id(0), id(2)));
    }

    #[test]
    fn extend_collects_tuples() {
        let mut set = MeasurementSet::new(3);
        set.extend([(id(0), id(1), 1.0), (id(1), id(2), 2.0)]);
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn campaign_errors() {
        let campaign = RangingCampaign {
            n: 2,
            true_positions: vec![Point2::new(0.0, 0.0), Point2::new(10.0, 0.0)],
            samples: vec![
                DirectedSample {
                    from: id(0),
                    to: id(1),
                    round: 0,
                    measured_m: 10.4,
                },
                DirectedSample {
                    from: id(1),
                    to: id(0),
                    round: 0,
                    measured_m: 9.8,
                },
            ],
        };
        assert_eq!(campaign.true_distance(id(0), id(1)), 10.0);
        let errs = campaign.errors();
        assert!((errs[0] - 0.4).abs() < 1e-12);
        assert!((errs[1] + 0.2).abs() < 1e-12);
        let grouped = campaign.by_directed_pair();
        assert_eq!(grouped.len(), 2);
        assert_eq!(grouped[&(id(0), id(1))], vec![10.4]);
    }

    #[test]
    fn serde_roundtrip() {
        let mut set = MeasurementSet::new(3);
        set.insert_weighted(id(0), id(2), 5.0, 0.5);
        let json = serde_json::to_string(&set).unwrap();
        let back: MeasurementSet = serde_json::from_str(&json).unwrap();
        assert_eq!(back, set);
    }

    proptest! {
        /// The adjacency-walking subgraph extraction agrees with a full
        /// edge-map scan for arbitrary sets and arbitrary induced node
        /// lists (including ids with no edges).
        #[test]
        fn prop_subgraph_matches_full_scan(
            edges in proptest::collection::vec((0usize..10, 0usize..10, 0.1f64..50.0), 0..40),
            picks in proptest::collection::vec(0usize..10, 0..8),
        ) {
            let mut set = MeasurementSet::new(10);
            for (a, b, d) in edges {
                if a != b {
                    set.insert(id(a), id(b), d);
                }
            }
            let mut nodes: Vec<NodeId> = picks.into_iter().map(NodeId).collect();
            nodes.sort();
            nodes.dedup();
            let (sub, mapping) = set.subgraph(&nodes);
            // Reference: re-map every edge whose endpoints are both picked.
            let mut expect = MeasurementSet::new(nodes.len());
            for (a, b, d, w) in set.iter_weighted() {
                let pa = nodes.iter().position(|&x| x == a);
                let pb = nodes.iter().position(|&x| x == b);
                if let (Some(ia), Some(ib)) = (pa, pb) {
                    expect.insert_weighted(NodeId(ia), NodeId(ib), d, w);
                }
            }
            prop_assert_eq!(sub, expect);
            prop_assert_eq!(mapping, nodes);
        }

        /// Adjacency stays consistent with the edge map under arbitrary
        /// insert/remove interleavings.
        #[test]
        fn prop_adjacency_consistent(ops in proptest::collection::vec(
            (0usize..6, 0usize..6, proptest::bool::ANY, 0.1f64..50.0), 0..60)
        ) {
            let mut set = MeasurementSet::new(6);
            for (a, b, is_insert, d) in ops {
                if a == b { continue; }
                if is_insert {
                    set.insert(id(a), id(b), d);
                } else {
                    set.remove(id(a), id(b));
                }
            }
            // Every adjacency entry has a matching edge and vice versa.
            let mut count = 0;
            for i in 0..6 {
                for (j, d) in set.neighbors_of(id(i)) {
                    prop_assert_eq!(set.get(id(i), j), Some(d));
                    count += 1;
                }
            }
            prop_assert_eq!(count, 2 * set.len());
        }
    }
}
