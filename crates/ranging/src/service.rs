//! The ranging service: campaigns over whole deployments.
//!
//! For every ordered pair of nodes within acoustic reach, the service
//! simulates the full chirp-train reception (speaker and microphone
//! hardware variation included), runs the configured detector, converts the
//! detection to a distance with the calibrated `δ_const`, and records the
//! sample. Repeating for several rounds yields the raw
//! [`crate::measurement::RangingCampaign`] that
//! statistical filtering and consistency checking refine into a
//! [`crate::measurement::MeasurementSet`].

use rand::Rng;
use rl_geom::Point2;
use rl_net::NodeId;
use rl_signal::chirp::ChirpTrainConfig;
use rl_signal::detection::DetectionParams;
use rl_signal::detector::{NodeAcoustics, ReceptionOutcome, ReceptionSimulator};
use rl_signal::env::Environment;
use serde::{Deserialize, Serialize};

use crate::consistency::{merge_bidirectional, ConsistencyConfig};
use crate::filter::StatFilter;
use crate::measurement::{DirectedSample, MeasurementSet, RangingCampaign};
use crate::tdoa::TdoaConverter;
use crate::{RangingError, Result};

/// Which detection pipeline the service runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServiceMode {
    /// Section 3.3's baseline: one long chirp, first hardware-detector hit.
    Baseline,
    /// Section 3.5's refined service: multi-chirp accumulation with
    /// two-level threshold detection.
    Refined,
}

/// Per-node hardware characteristics (speaker and microphone halves).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeHardware {
    /// Loudspeaker output-power multiplier (unit variation up to ~5 dB).
    pub speaker_gain: f64,
    /// Microphone sensitivity multiplier (rated ±3 dB).
    pub mic_gain: f64,
    /// Constant actuation/sensing delay contribution, detector samples.
    pub delay_samples: f64,
    /// Whether this node's acoustic hardware is faulty.
    pub faulty: bool,
    /// Phantom-window position for faulty hardware, fraction of the buffer.
    pub phantom_fraction: f64,
}

/// Distribution parameters for [`NodeHardware::sample`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HardwareModel {
    /// Log-normal sigma of the speaker gain.
    pub speaker_sigma: f64,
    /// Log-normal sigma of the microphone gain.
    pub mic_sigma: f64,
    /// Gaussian sigma of each node's delay contribution, samples.
    pub delay_sigma_samples: f64,
    /// Per-node faulty-hardware probability.
    pub faulty_probability: f64,
}

impl Default for HardwareModel {
    fn default() -> Self {
        HardwareModel {
            speaker_sigma: 0.11,
            mic_sigma: 0.07,
            delay_sigma_samples: 3.5,
            faulty_probability: 0.02,
        }
    }
}

impl NodeHardware {
    /// Draws one node's hardware from the model.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R, model: &HardwareModel) -> Self {
        NodeHardware {
            speaker_gain: rl_math::rng::normal(rng, 0.0, model.speaker_sigma).exp(),
            mic_gain: rl_math::rng::normal(rng, 0.0, model.mic_sigma).exp(),
            delay_samples: rl_math::rng::normal(rng, 0.0, model.delay_sigma_samples),
            faulty: rng.random::<f64>() < model.faulty_probability,
            phantom_fraction: rng.random::<f64>(),
        }
    }

    /// Nominal hardware (unit gains, no delay, fault-free).
    pub fn nominal() -> Self {
        NodeHardware {
            speaker_gain: 1.0,
            mic_gain: 1.0,
            delay_samples: 0.0,
            faulty: false,
            phantom_fraction: 0.5,
        }
    }

    /// Combines the speaker half of `from` with the microphone half of
    /// `to` into the pair acoustics the reception simulator expects.
    ///
    /// Phantom self-noise lives in the **receiver's** detector, so only a
    /// faulty `to` node produces correlated phantom detections; the two
    /// directions of a pair therefore disagree, which is exactly what the
    /// bidirectional consistency check exploits. A faulty speaker merely
    /// loses output power.
    pub fn pair(from: &NodeHardware, to: &NodeHardware) -> NodeAcoustics {
        let speaker_gain = if from.faulty {
            from.speaker_gain * 0.5
        } else {
            from.speaker_gain
        };
        NodeAcoustics {
            sensitivity: speaker_gain * to.mic_gain,
            delay_offset_samples: from.delay_samples + to.delay_samples,
            faulty: to.faulty,
            phantom_fraction: to.phantom_fraction,
        }
    }
}

/// Configuration of a ranging campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceConfig {
    /// Detection pipeline.
    pub mode: ServiceMode,
    /// Chirp-train shape.
    pub chirps: ChirpTrainConfig,
    /// Refined-mode detector thresholds.
    pub detection: DetectionParams,
    /// Number of measurement rounds (each round is one chirp train per
    /// ordered pair).
    pub rounds: usize,
    /// Only pairs with true distance at most this are attempted (radio
    /// coordination prevents chirping at nodes known to be far away).
    pub max_attempt_m: f64,
    /// Node hardware variation model.
    pub hardware: HardwareModel,
    /// Calibration reference distance (meters) and trial count.
    pub calibration: (f64, usize),
}

impl ServiceConfig {
    /// The refined service as fielded in Section 3.6: paper chirp train,
    /// calibrated thresholds, six rounds.
    pub fn refined() -> Self {
        ServiceConfig {
            mode: ServiceMode::Refined,
            chirps: ChirpTrainConfig::paper(),
            detection: DetectionParams::paper(),
            rounds: 6,
            max_attempt_m: 30.0,
            hardware: HardwareModel::default(),
            calibration: (8.0, 40),
        }
    }

    /// The baseline service of Section 3.3: one long chirp, first
    /// detector hit, three rounds.
    pub fn baseline() -> Self {
        ServiceConfig {
            mode: ServiceMode::Baseline,
            chirps: ChirpTrainConfig::baseline(),
            detection: DetectionParams::paper(),
            rounds: 3,
            max_attempt_m: 30.0,
            hardware: HardwareModel::default(),
            calibration: (8.0, 40),
        }
    }

    /// Validates parameter domains.
    ///
    /// # Errors
    ///
    /// Returns [`RangingError::InvalidConfig`] naming the violated
    /// constraint.
    pub fn validate(&self) -> Result<()> {
        if self.rounds == 0 {
            return Err(RangingError::InvalidConfig("rounds must be nonzero"));
        }
        if !(self.max_attempt_m > 0.0) {
            return Err(RangingError::InvalidConfig(
                "max_attempt_m must be positive",
            ));
        }
        if self.chirps.validate().is_err() {
            return Err(RangingError::InvalidConfig("invalid chirp configuration"));
        }
        if self.detection.validate().is_err() {
            return Err(RangingError::InvalidConfig("invalid detection parameters"));
        }
        if !(self.calibration.0 > 0.0) || self.calibration.1 == 0 {
            return Err(RangingError::InvalidConfig("invalid calibration spec"));
        }
        Ok(())
    }
}

/// The acoustic ranging service for one environment.
#[derive(Debug, Clone)]
pub struct RangingService {
    config: ServiceConfig,
    simulator: ReceptionSimulator,
    converter: TdoaConverter,
}

impl RangingService {
    /// Creates and calibrates a service for `env`.
    ///
    /// Calibration measures the constant detection bias at the configured
    /// reference distance with nominal hardware, exactly as the paper's
    /// pre-deployment calibration does.
    ///
    /// # Errors
    ///
    /// Returns configuration errors and
    /// [`RangingError::CalibrationFailed`] when the reference distance is
    /// undetectable in `env`.
    pub fn new<R: Rng + ?Sized>(
        env: Environment,
        config: ServiceConfig,
        rng: &mut R,
    ) -> Result<Self> {
        config.validate()?;
        let simulator = ReceptionSimulator::new(env.profile(), config.chirps.clone());
        let converter = Self::calibrate(&simulator, &config, rng)?;
        Ok(RangingService {
            config,
            simulator,
            converter,
        })
    }

    fn calibrate<R: Rng + ?Sized>(
        simulator: &ReceptionSimulator,
        config: &ServiceConfig,
        rng: &mut R,
    ) -> Result<TdoaConverter> {
        let (reference_m, trials) = config.calibration;
        let nominal = NodeHardware::nominal();
        let pair = NodeHardware::pair(&nominal, &nominal);
        let mut biases = Vec::with_capacity(trials);
        for _ in 0..trials {
            let outcome = simulator.receive_with(reference_m, &pair, rng);
            if let Some(idx) = Self::detect_in(config.mode, &config.detection, &outcome) {
                biases.push(outcome.error_samples(idx));
            }
        }
        // Require reliable detection at the reference distance; sporadic
        // noise detections must not pass as a calibration.
        if biases.len() * 2 < trials {
            return Err(RangingError::CalibrationFailed);
        }
        let Some(median_bias) = rl_math::stats::median(&mut biases) else {
            return Err(RangingError::CalibrationFailed);
        };
        Ok(TdoaConverter::new(config.chirps.clone(), median_bias))
    }

    fn detect_in(
        mode: ServiceMode,
        detection: &DetectionParams,
        outcome: &ReceptionOutcome,
    ) -> Option<usize> {
        match mode {
            ServiceMode::Baseline => outcome.baseline_first_hit(),
            ServiceMode::Refined => outcome.detect(detection),
        }
    }

    /// The calibrated TDoA converter in use.
    pub fn converter(&self) -> &TdoaConverter {
        &self.converter
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Measures one ordered pair once; returns the measured distance.
    pub fn measure_pair<R: Rng + ?Sized>(
        &self,
        true_distance_m: f64,
        pair: &NodeAcoustics,
        rng: &mut R,
    ) -> Option<f64> {
        let outcome = self.simulator.receive_with(true_distance_m, pair, rng);
        Self::detect_in(self.config.mode, &self.config.detection, &outcome)
            .map(|idx| self.converter.distance(idx))
    }

    /// Runs a full campaign: `rounds` rounds over every ordered pair within
    /// `max_attempt_m`.
    pub fn run_campaign<R: Rng + ?Sized>(
        &self,
        positions: &[Point2],
        rng: &mut R,
    ) -> RangingCampaign {
        let n = positions.len();
        let hardware: Vec<NodeHardware> = (0..n)
            .map(|_| NodeHardware::sample(rng, &self.config.hardware))
            .collect();
        self.run_campaign_with_hardware(positions, &hardware, rng)
    }

    /// Runs a campaign with explicit per-node hardware (for reproducible
    /// fault-injection tests).
    ///
    /// # Panics
    ///
    /// Panics if `hardware` and `positions` differ in length.
    pub fn run_campaign_with_hardware<R: Rng + ?Sized>(
        &self,
        positions: &[Point2],
        hardware: &[NodeHardware],
        rng: &mut R,
    ) -> RangingCampaign {
        assert_eq!(
            positions.len(),
            hardware.len(),
            "one hardware description per node"
        );
        let n = positions.len();
        let mut samples = Vec::new();
        for round in 0..self.config.rounds {
            for from in 0..n {
                for to in 0..n {
                    if from == to {
                        continue;
                    }
                    let d = positions[from].distance(positions[to]);
                    if d > self.config.max_attempt_m {
                        continue;
                    }
                    let pair = NodeHardware::pair(&hardware[from], &hardware[to]);
                    if let Some(measured) = self.measure_pair(d, &pair, rng) {
                        samples.push(DirectedSample {
                            from: NodeId(from),
                            to: NodeId(to),
                            round,
                            measured_m: measured,
                        });
                    }
                }
            }
        }
        RangingCampaign {
            n,
            true_positions: positions.to_vec(),
            samples,
        }
    }

    /// Convenience pipeline: campaign → statistical filter → bidirectional
    /// consistency → measurement set.
    pub fn measurement_set<R: Rng + ?Sized>(
        &self,
        positions: &[Point2],
        filter: StatFilter,
        consistency: &ConsistencyConfig,
        rng: &mut R,
    ) -> (MeasurementSet, RangingCampaign) {
        let campaign = self.run_campaign(positions, rng);
        let directed = filter.apply(&campaign);
        let set = merge_bidirectional(&directed, campaign.n, consistency);
        (set, campaign)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl_math::rng::seeded;

    fn small_line(n: usize, spacing: f64) -> Vec<Point2> {
        (0..n)
            .map(|i| Point2::new(i as f64 * spacing, 0.0))
            .collect()
    }

    #[test]
    fn configs_validate() {
        ServiceConfig::refined().validate().unwrap();
        ServiceConfig::baseline().validate().unwrap();
        let bad = ServiceConfig {
            rounds: 0,
            ..ServiceConfig::refined()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn refined_service_measures_close_pairs_accurately() {
        let mut rng = seeded(1);
        let svc = RangingService::new(Environment::Grass, ServiceConfig::refined(), &mut rng)
            .expect("calibration succeeds on grass");
        let positions = small_line(3, 9.0);
        let campaign = svc.run_campaign(&positions, &mut rng);
        assert!(
            !campaign.samples.is_empty(),
            "9 m pairs on grass should be measured"
        );
        // Median absolute error across samples should be decimeter-scale
        // (the paper reports ~1 % of max range ≈ 20-33 cm).
        let abs_errors: Vec<f64> = campaign.errors().iter().map(|e| e.abs()).collect();
        let med = rl_math::stats::median_of(&abs_errors).unwrap();
        assert!(med < 0.5, "median |error| {med} m");
    }

    #[test]
    fn far_pairs_produce_no_measurements() {
        let mut rng = seeded(2);
        let svc =
            RangingService::new(Environment::Grass, ServiceConfig::refined(), &mut rng).unwrap();
        let positions = small_line(2, 28.0);
        let campaign = svc.run_campaign(&positions, &mut rng);
        assert!(
            campaign.samples.len() <= 2,
            "28 m on grass should rarely yield measurements, got {}",
            campaign.samples.len()
        );
    }

    #[test]
    fn campaign_covers_rounds_and_directions() {
        let mut rng = seeded(3);
        let svc =
            RangingService::new(Environment::Pavement, ServiceConfig::refined(), &mut rng).unwrap();
        let positions = small_line(2, 10.0);
        let campaign = svc.run_campaign(&positions, &mut rng);
        let by_pair = campaign.by_directed_pair();
        assert_eq!(by_pair.len(), 2, "both directions measured");
        for (_, samples) in by_pair {
            assert!(samples.len() >= 4, "most of 6 rounds succeed at 10 m");
        }
    }

    #[test]
    fn max_attempt_limits_pairs() {
        let mut rng = seeded(4);
        let config = ServiceConfig {
            max_attempt_m: 5.0,
            ..ServiceConfig::refined()
        };
        let svc = RangingService::new(Environment::Grass, config, &mut rng).unwrap();
        let positions = small_line(3, 9.0);
        let campaign = svc.run_campaign(&positions, &mut rng);
        assert!(campaign.samples.is_empty());
    }

    #[test]
    fn faulty_node_errors_are_correlated_across_rounds() {
        let mut rng = seeded(5);
        let svc =
            RangingService::new(Environment::Grass, ServiceConfig::refined(), &mut rng).unwrap();
        let positions = small_line(2, 12.0);
        let mut hardware = vec![NodeHardware::nominal(), NodeHardware::nominal()];
        hardware[1].faulty = true;
        hardware[1].phantom_fraction = 0.15; // phantom at ~4.5 m
        let campaign = svc.run_campaign_with_hardware(&positions, &hardware, &mut rng);
        // Measurements toward the faulty microphone that lock onto the
        // phantom yield ~4.5 m instead of 12 m, consistently.
        let toward_faulty: Vec<f64> = campaign
            .samples
            .iter()
            .filter(|s| s.to == NodeId(1))
            .map(|s| s.measured_m)
            .collect();
        assert!(!toward_faulty.is_empty());
        let med = rl_math::stats::median_of(&toward_faulty).unwrap();
        assert!(
            med < 9.0,
            "faulty phantom should pull measurements low, median {med}"
        );
        let spread = rl_math::stats::std_dev(&toward_faulty).unwrap_or(0.0);
        assert!(
            spread < 2.5,
            "phantom errors should be correlated (small spread), got {spread}"
        );
    }

    #[test]
    fn pipeline_produces_consistent_set() {
        let mut rng = seeded(6);
        let svc =
            RangingService::new(Environment::Grass, ServiceConfig::refined(), &mut rng).unwrap();
        let positions = small_line(4, 9.0);
        let (set, campaign) = svc.measurement_set(
            &positions,
            StatFilter::Median,
            &ConsistencyConfig::default(),
            &mut rng,
        );
        assert!(campaign.samples.len() > set.len());
        assert!(set.len() >= 3, "adjacent pairs should survive the pipeline");
        // Every surviving distance is close to truth.
        for (a, b, d) in set.iter() {
            let truth = campaign.true_distance(a, b);
            assert!(
                (d - truth).abs() < 1.5,
                "{a}-{b}: measured {d}, true {truth}"
            );
        }
    }

    #[test]
    fn calibration_failure_surfaces() {
        let mut rng = seeded(7);
        let config = ServiceConfig {
            calibration: (29.0, 10), // beyond grass range
            ..ServiceConfig::refined()
        };
        let err = RangingService::new(Environment::Grass, config, &mut rng).unwrap_err();
        assert_eq!(err, RangingError::CalibrationFailed);
    }

    #[test]
    fn baseline_mode_runs() {
        let mut rng = seeded(8);
        let svc =
            RangingService::new(Environment::Urban, ServiceConfig::baseline(), &mut rng).unwrap();
        let positions = small_line(2, 10.0);
        let campaign = svc.run_campaign(&positions, &mut rng);
        assert!(!campaign.samples.is_empty());
    }
}
