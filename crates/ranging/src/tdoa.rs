//! Detection-index → distance conversion with `δ_const` calibration.
//!
//! Section 3.1: the receiver computes
//! `d_ij = V_s · (t_detect − (t_recv − δ_xmit) − δ_const)`, where `δ_const`
//! bundles the constant transmit-to-chirp delay and the sensing/actuation
//! delays. "Since the sensing and actuation delays are partially determined
//! by the characteristics of the environment, δ_const must be determined
//! through calibration" — "without such calibration, a constant offset of
//! 10–20 cm may be added to every ranging measurement" (Section 3.6).
//!
//! In the simulation, the analogous constant bias comes from the speaker
//! ramp-up and threshold-crossing delay of the detector; [`calibrate`]
//! measures it at a reference distance exactly as a field calibration
//! would.

use rand::Rng;
use rl_signal::chirp::ChirpTrainConfig;
use rl_signal::detection::DetectionParams;
use rl_signal::detector::ReceptionSimulator;
use serde::{Deserialize, Serialize};

use crate::{RangingError, Result};

/// Converts buffer detection indices to distances.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TdoaConverter {
    config: ChirpTrainConfig,
    delta_const_samples: f64,
}

impl TdoaConverter {
    /// A converter with an explicit `δ_const` (in detector samples).
    pub fn new(config: ChirpTrainConfig, delta_const_samples: f64) -> Self {
        TdoaConverter {
            config,
            delta_const_samples,
        }
    }

    /// An uncalibrated converter (`δ_const = 0`): every measurement carries
    /// the constant detection bias.
    pub fn uncalibrated(config: ChirpTrainConfig) -> Self {
        TdoaConverter::new(config, 0.0)
    }

    /// The calibration constant in samples.
    pub fn delta_const_samples(&self) -> f64 {
        self.delta_const_samples
    }

    /// The calibration constant expressed in meters.
    pub fn delta_const_meters(&self) -> f64 {
        self.config.sample_to_meters(self.delta_const_samples)
    }

    /// Converts a detection index to a distance (meters, clamped at 0).
    pub fn distance(&self, detection_index: usize) -> f64 {
        self.config
            .sample_to_meters(detection_index as f64 - self.delta_const_samples)
            .max(0.0)
    }
}

/// Calibrates `δ_const` for an environment by running `trials` receptions
/// at a known `reference_m` distance and taking the median detection bias,
/// mirroring the paper's pre-deployment calibration procedure.
///
/// # Errors
///
/// Returns [`RangingError::CalibrationFailed`] when no trial produced a
/// detection (reference distance beyond the environment's range) and
/// [`RangingError::InvalidConfig`] for a zero trial count or a non-positive
/// reference distance.
pub fn calibrate<R: Rng + ?Sized>(
    simulator: &ReceptionSimulator,
    detection: &DetectionParams,
    reference_m: f64,
    trials: usize,
    rng: &mut R,
) -> Result<TdoaConverter> {
    if trials == 0 {
        return Err(RangingError::InvalidConfig("trials must be nonzero"));
    }
    if !(reference_m > 0.0) {
        return Err(RangingError::InvalidConfig(
            "reference distance must be positive",
        ));
    }
    let mut biases = Vec::with_capacity(trials);
    for _ in 0..trials {
        let outcome = simulator.receive(reference_m, rng);
        if let Some(idx) = outcome.detect(detection) {
            biases.push(outcome.error_samples(idx));
        }
    }
    // A usable reference distance must detect reliably; sporadic noise
    // detections beyond range must not pass as a calibration.
    if biases.len() * 2 < trials {
        return Err(RangingError::CalibrationFailed);
    }
    let Some(median_bias) = rl_math::stats::median(&mut biases) else {
        return Err(RangingError::CalibrationFailed);
    };
    Ok(TdoaConverter::new(simulator.config().clone(), median_bias))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl_math::rng::seeded;
    use rl_signal::env::Environment;

    fn sim() -> ReceptionSimulator {
        ReceptionSimulator::new(Environment::Grass.profile(), ChirpTrainConfig::paper())
    }

    #[test]
    fn conversion_roundtrip() {
        let cfg = ChirpTrainConfig::paper();
        let conv = TdoaConverter::new(cfg.clone(), 10.0);
        let idx = cfg.meters_to_sample(12.0) as usize + 10;
        let d = conv.distance(idx);
        assert!((d - 12.0).abs() < 0.05, "converted {d}");
        assert!((conv.delta_const_meters() - cfg.sample_to_meters(10.0)).abs() < 1e-12);
    }

    #[test]
    fn distance_clamps_at_zero() {
        let conv = TdoaConverter::new(ChirpTrainConfig::paper(), 100.0);
        assert_eq!(conv.distance(3), 0.0);
    }

    #[test]
    fn uncalibrated_has_zero_delta() {
        let conv = TdoaConverter::uncalibrated(ChirpTrainConfig::paper());
        assert_eq!(conv.delta_const_samples(), 0.0);
    }

    #[test]
    fn calibration_removes_constant_bias() {
        let sim = sim();
        let params = DetectionParams::paper();
        let mut rng = seeded(42);
        let conv = calibrate(&sim, &params, 8.0, 60, &mut rng).unwrap();

        // The calibration constant should be positive (ramp-up delay) and
        // of the 10-30 cm order the paper reports.
        let delta_m = conv.delta_const_meters();
        assert!(delta_m > 0.0, "delta {delta_m} m should be positive");
        assert!(delta_m < 0.6, "delta {delta_m} m unreasonably large");

        // Calibrated measurements at a different distance are near-unbiased;
        // uncalibrated ones carry the constant offset.
        let uncal = TdoaConverter::uncalibrated(sim.config().clone());
        let mut cal_errors = Vec::new();
        let mut uncal_errors = Vec::new();
        for _ in 0..80 {
            let out = sim.receive(12.0, &mut rng);
            if let Some(idx) = out.detect(&params) {
                cal_errors.push(conv.distance(idx) - 12.0);
                uncal_errors.push(uncal.distance(idx) - 12.0);
            }
        }
        let cal_med = rl_math::stats::median_of(&cal_errors).unwrap();
        let uncal_med = rl_math::stats::median_of(&uncal_errors).unwrap();
        assert!(
            cal_med.abs() < 0.15,
            "calibrated median error {cal_med} m should be near zero"
        );
        assert!(
            uncal_med > cal_med + 0.05,
            "uncalibrated ({uncal_med}) should sit above calibrated ({cal_med})"
        );
    }

    #[test]
    fn calibration_fails_beyond_range() {
        let sim = sim();
        let mut rng = seeded(43);
        let err = calibrate(&sim, &DetectionParams::paper(), 29.0, 10, &mut rng).unwrap_err();
        assert_eq!(err, RangingError::CalibrationFailed);
    }

    #[test]
    fn calibration_validates_arguments() {
        let sim = sim();
        let mut rng = seeded(44);
        assert!(matches!(
            calibrate(&sim, &DetectionParams::paper(), 8.0, 0, &mut rng),
            Err(RangingError::InvalidConfig(_))
        ));
        assert!(matches!(
            calibrate(&sim, &DetectionParams::paper(), 0.0, 5, &mut rng),
            Err(RangingError::InvalidConfig(_))
        ));
    }
}
