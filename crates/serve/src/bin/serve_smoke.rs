//! Release-mode serving gate; run by CI.
//!
//! ```text
//! cargo run --release -p rl-serve --bin serve_smoke
//! ```
//!
//! Exercises the serving layer end to end and enforces:
//!
//! 1. **Determinism** — a served reply is bit-identical to the
//!    in-process [`solve_direct`] for the same triple (positions
//!    compared at the `f64::to_bits` level),
//! 2. **Caching** — a repeated identical request is answered from the
//!    solution cache (`cache_hits` increments) and its raw response
//!    frame is **byte-identical** to the cold one,
//! 3. **Batching** — concurrent identical requests coalesce into one
//!    shared solve: the solve count stays strictly below the request
//!    count,
//! 4. **Throughput** — [`CLIENTS`] concurrent clients replaying a
//!    cached town query sustain at least [`RPS_FLOOR`] requests/second
//!    with p99 latency under [`P99_BUDGET`].
//!
//! Measured req/s and p50/p99 latency are written to `BENCH_serve.json`
//! (uploaded as a CI artifact next to the other `BENCH_*.json` records).

use std::time::{Duration, Instant};

use rl_serve::server::solve_direct;
use rl_serve::{Client, ServeConfig, Server};
use serde::Serialize;

/// Seed used for every smoke query (matches the campaign master seed).
const SEED: u64 = 20050614;

/// Concurrent clients in the throughput phase.
const CLIENTS: usize = 4;

/// Requests per client in the throughput phase.
const REQUESTS_PER_CLIENT: usize = 250;

/// Minimum sustained throughput on cached town queries.
const RPS_FLOOR: f64 = 200.0;

/// Generous per-request p99 latency budget for cached queries.
const P99_BUDGET: Duration = Duration::from_millis(250);

/// Duplicate localize requests fired at the single-worker batching
/// server (on top of one blocker request).
const DUPLICATES: usize = 6;

#[derive(Debug, Serialize)]
struct BatchingRecord {
    requests: u64,
    solves: u64,
    coalesced: u64,
    cache_hits: u64,
}

#[derive(Debug, Serialize)]
struct ThroughputRecord {
    clients: usize,
    requests: usize,
    wall_ms: f64,
    rps: f64,
    rps_floor: f64,
    p50_ms: f64,
    p99_ms: f64,
    p99_budget_ms: f64,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    seed: u64,
    workers: u64,
    bitwise_triples_checked: usize,
    cached_frame_bytes: usize,
    batching: BatchingRecord,
    throughput: ThroughputRecord,
}

/// Asserts `reply` equals `direct` with positions compared bit-for-bit.
fn assert_bitwise(
    reply: &rl_serve::LocalizeReply,
    direct: &rl_serve::LocalizeReply,
    what: &str,
) -> bool {
    if reply.positions.len() != direct.positions.len() {
        eprintln!("DETERMINISM BROKEN: {what}: position counts diverge");
        return false;
    }
    for (i, (a, b)) in reply.positions.iter().zip(&direct.positions).enumerate() {
        let ok = match (a, b) {
            (Some(a), Some(b)) => a.0.to_bits() == b.0.to_bits() && a.1.to_bits() == b.1.to_bits(),
            (None, None) => true,
            _ => false,
        };
        if !ok {
            eprintln!(
                "DETERMINISM BROKEN: {what}: node {i} served {a:?} but solves directly to {b:?}"
            );
            return false;
        }
    }
    if reply != direct {
        eprintln!("DETERMINISM BROKEN: {what}: non-position reply fields diverge");
        return false;
    }
    true
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn main() {
    let mut failed = false;

    // Phase 1+2: determinism and caching, on a default server.
    let (addr, handle) = Server::spawn(ServeConfig::default()).expect("bind smoke server");
    let mut client = Client::connect(addr).expect("connect");
    let workers = client.status().expect("status").workers;

    let triples = [
        ("town", "lss"),
        ("parking-lot", "multilateration"),
        ("grass-grid", "distributed-lss"),
        ("metro-250", "centroid"),
    ];
    for (deployment, solver) in triples {
        let reply = client
            .localize(deployment, solver, SEED)
            .expect("served solve");
        let direct = solve_direct(deployment, solver, SEED).expect("direct solve");
        if !assert_bitwise(&reply, &direct, &format!("{deployment}/{solver}")) {
            failed = true;
        }
    }
    println!(
        "determinism: {} served triples bit-identical to direct solves",
        triples.len()
    );

    // Byte-identical cached frame: issue the same raw request twice.
    let request = rl_serve::Request::localize("town", "lss", SEED);
    let before = client.status().expect("status").cache_hits;
    let cold = client.request_raw(&request).expect("first frame");
    let cached = client.request_raw(&request).expect("second frame");
    let hits = client.status().expect("status").cache_hits - before;
    if cold != cached {
        eprintln!(
            "CACHE CONTRACT BROKEN: cached response frame differs from the cold one \
             ({} vs {} bytes)",
            cached.len(),
            cold.len()
        );
        failed = true;
    }
    if hits < 2 {
        // Both raw requests repeat the phase-1 town/lss solve, so both
        // must be cache hits.
        eprintln!("CACHE NOT SERVING: expected >=2 cache hits for repeated requests, got {hits}");
        failed = true;
    }
    println!(
        "caching: repeated town/lss request served from cache, frames byte-identical \
         ({} bytes)",
        cached.len()
    );
    client.shutdown().expect("shutdown");
    handle.join().expect("join").expect("serve");

    // Phase 3: batching. One worker, a solve floor wide enough that the
    // duplicates deterministically arrive while their solve is in
    // flight, and a blocker request occupying the worker first.
    let config = ServeConfig::default()
        .with_workers(1)
        .with_solve_floor(Duration::from_millis(250));
    let (addr, handle) = Server::spawn(config).expect("bind batching server");
    let blocker = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect blocker");
        client
            .localize("parking-lot", "centroid", SEED)
            .expect("blocker solve");
    });
    // Wait until the worker has picked the blocker up, so every
    // duplicate below is enqueued behind it.
    let mut control = Client::connect(addr).expect("connect control");
    while control.status().expect("status").solves_started < 1 {
        std::thread::sleep(Duration::from_millis(5));
    }
    let duplicates: Vec<_> = (0..DUPLICATES)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect duplicate");
                client
                    .localize("town", "centroid", SEED)
                    .expect("duplicate solve")
            })
        })
        .collect();
    let replies: Vec<_> = duplicates
        .into_iter()
        .map(|t| t.join().expect("duplicate thread"))
        .collect();
    blocker.join().expect("blocker thread");
    let stats = control.status().expect("status");
    let batching = BatchingRecord {
        requests: stats.requests,
        solves: stats.solves,
        coalesced: stats.coalesced,
        cache_hits: stats.cache_hits,
    };
    control.shutdown().expect("shutdown");
    handle.join().expect("join").expect("serve");

    let direct = solve_direct("town", "centroid", SEED).expect("direct town/centroid");
    for reply in &replies {
        if !assert_bitwise(reply, &direct, "coalesced town/centroid") {
            failed = true;
        }
    }
    // Blocker + one shared solve; DUPLICATES requests collapse into one.
    if batching.solves >= batching.requests || batching.solves != 2 {
        eprintln!(
            "BATCHING BROKEN: {} requests ran {} solves (expected exactly 2: blocker + one \
             coalesced solve)",
            batching.requests, batching.solves
        );
        failed = true;
    }
    if batching.coalesced + batching.cache_hits != (DUPLICATES as u64 - 1) || batching.coalesced < 1
    {
        eprintln!(
            "BATCHING BROKEN: {} duplicates should coalesce/hit-cache {} times, got \
             coalesced={} cache_hits={}",
            DUPLICATES,
            DUPLICATES - 1,
            batching.coalesced,
            batching.cache_hits
        );
        failed = true;
    }
    println!(
        "batching: {} requests -> {} solves (coalesced={}, cache_hits={}), fan-out replies \
         bit-identical",
        batching.requests, batching.solves, batching.coalesced, batching.cache_hits
    );

    // Phase 4: throughput on cached town queries.
    let (addr, handle) = Server::spawn(ServeConfig::default()).expect("bind throughput server");
    let mut control = Client::connect(addr).expect("connect control");
    control.localize("town", "lss", SEED).expect("warm cache");
    let started = Instant::now();
    let clients: Vec<_> = (0..CLIENTS)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect load client");
                let mut latencies = Vec::with_capacity(REQUESTS_PER_CLIENT);
                for _ in 0..REQUESTS_PER_CLIENT {
                    let t0 = Instant::now();
                    client.localize("town", "lss", SEED).expect("cached solve");
                    latencies.push(t0.elapsed());
                }
                latencies
            })
        })
        .collect();
    let mut latencies: Vec<Duration> = clients
        .into_iter()
        .flat_map(|t| t.join().expect("load thread"))
        .collect();
    let wall = started.elapsed();
    let stats = control.status().expect("status");
    control.shutdown().expect("shutdown");
    handle.join().expect("join").expect("serve");

    latencies.sort();
    let total = CLIENTS * REQUESTS_PER_CLIENT;
    let rps = total as f64 / wall.as_secs_f64();
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);
    let throughput = ThroughputRecord {
        clients: CLIENTS,
        requests: total,
        wall_ms: wall.as_secs_f64() * 1e3,
        rps,
        rps_floor: RPS_FLOOR,
        p50_ms: p50.as_secs_f64() * 1e3,
        p99_ms: p99.as_secs_f64() * 1e3,
        p99_budget_ms: P99_BUDGET.as_secs_f64() * 1e3,
    };
    println!(
        "throughput: {CLIENTS} clients x {REQUESTS_PER_CLIENT} cached town queries in {wall:.2?} \
         -> {rps:.0} req/s (floor {RPS_FLOOR:.0}), p50 {p50:.2?}, p99 {p99:.2?} (budget \
         {P99_BUDGET:.0?})"
    );
    if rps < RPS_FLOOR {
        eprintln!("THROUGHPUT FLOOR MISSED: {rps:.0} req/s < {RPS_FLOOR:.0} req/s");
        failed = true;
    }
    if p99 > P99_BUDGET {
        eprintln!("P99 BUDGET EXCEEDED: {p99:.2?} > {P99_BUDGET:.0?}");
        failed = true;
    }
    let expected_hits = total as u64; // warm request solved; all load requests hit
    if stats.cache_hits < expected_hits {
        eprintln!(
            "CACHE NOT SERVING UNDER LOAD: {} hits < {} load requests",
            stats.cache_hits, expected_hits
        );
        failed = true;
    }

    let bench = BenchReport {
        seed: SEED,
        workers,
        bitwise_triples_checked: triples.len(),
        cached_frame_bytes: cached.len(),
        batching,
        throughput,
    };
    let json = serde_json::to_string(&bench).expect("report serializes");
    match std::fs::write("BENCH_serve.json", &json) {
        Ok(()) => println!("wrote BENCH_serve.json ({} bytes)", json.len()),
        Err(e) => {
            eprintln!("FAILED to write BENCH_serve.json: {e}");
            failed = true;
        }
    }

    if failed {
        std::process::exit(1);
    }
    println!(
        "serving layer: bit-identical replies, byte-identical cached frames, coalesced solves, \
         {rps:.0} req/s"
    );
}
