//! Release-mode streaming-session gate; run by CI.
//!
//! ```text
//! cargo run --release -p rl-serve --bin session_smoke
//! ```
//!
//! Exercises protocol v2's `stream` namespace end to end and enforces:
//!
//! 1. **Replay bit-identity** — a wire-driven session replaying the
//!    town mobility trace produces per-push solution fingerprints (and
//!    final positions, compared at the `f64::to_bits` level) identical
//!    to a directly-driven [`StreamingTracker`], for worker counts 1
//!    and 4,
//! 2. **Warm tick latency** — pushing the trace tick-by-tick over the
//!    wire, every warm tick (tick 0, the cold solve, is excluded) must
//!    come back under [`WARM_P99_BUDGET`] at the 99th percentile,
//! 3. **Non-starvation** — with one worker, a solve floor, and a queue
//!    full of batch jobs, interleaved stream ticks must drain *before*
//!    the batch backlog does (the weighted-fair wheel alternates
//!    classes), while every batch job still completes with a
//!    bit-correct reply.
//!
//! Warm-tick p50/p99 and the non-starvation timings are written to
//! `BENCH_sessions.json` (uploaded as a CI artifact next to the other
//! `BENCH_*.json` records).

use std::time::{Duration, Instant};

use rl_core::tracking::{
    solution_fingerprint, StreamingTracker, TickObservation, Tracker, TrackerConfig,
};
use rl_deploy::mobility;
use rl_serve::protocol::stream::{StreamSource, TrackerSpec};
use rl_serve::server::solve_direct;
use rl_serve::{Client, ServeConfig, Server};
use serde::Serialize;

/// Seed used for every smoke stream (matches the campaign master seed).
const SEED: u64 = 20050614;

/// Ticks replayed from the town mobility trace.
const TICKS: usize = 48;

/// p99 budget for warm (tick ≥ 1) over-the-wire push round-trips.
const WARM_P99_BUDGET: Duration = Duration::from_millis(20);

/// Distinct batch jobs queued behind the solve floor in the
/// non-starvation phase.
const BATCH_STORM: usize = 12;

/// Stream ticks interleaved against the batch storm.
const STORM_TICKS: usize = 4;

/// Per-job solve floor in the non-starvation phase.
const STORM_FLOOR: Duration = Duration::from_millis(30);

#[derive(Debug, Serialize)]
struct LatencyRecord {
    ticks: usize,
    universe: u64,
    cold_ms: f64,
    p50_ms: f64,
    p99_ms: f64,
    p99_budget_ms: f64,
}

#[derive(Debug, Serialize)]
struct StarvationRecord {
    workers: usize,
    batch_jobs: usize,
    stream_ticks: usize,
    floor_ms: f64,
    stream_done_ms: f64,
    batch_done_ms: f64,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    seed: u64,
    replay_worker_counts: Vec<usize>,
    replay_fingerprint: u64,
    latency: LatencyRecord,
    starvation: StarvationRecord,
}

/// The deterministic observation stream both sides of the parity
/// checks consume: the town mobility preset, 59 nodes.
fn town_stream() -> Vec<TickObservation> {
    mobility::preset("town-mobile")
        .expect("registry preset")
        .with_ticks(TICKS)
        .trace(SEED)
        .observations
}

fn town_source() -> StreamSource {
    StreamSource::Preset {
        name: "town-mobile".into(),
    }
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn main() {
    let mut failed = false;
    let observations = town_stream();

    // The in-process reference tracker, fed the same trace.
    let mut direct = StreamingTracker::with_lss(TrackerConfig::new(SEED));
    let mut direct_prints = Vec::with_capacity(observations.len());
    for obs in &observations {
        direct.observe(obs).expect("direct tick");
        direct_prints.push(solution_fingerprint(direct.latest().expect("solution")));
    }
    let final_print = *direct_prints.last().expect("non-empty trace");
    let direct_positions = direct.latest().expect("solution").positions().clone();

    // Phase 1: replay bit-identity for worker counts 1 and 4, pushing
    // tick-by-tick and checking every intermediate fingerprint.
    let replay_worker_counts = vec![1usize, 4];
    for &workers in &replay_worker_counts {
        let (addr, handle) =
            Server::spawn(ServeConfig::default().with_workers(workers)).expect("bind");
        let mut client = Client::connect(addr).expect("connect");
        let mut session = client
            .open_stream(town_source(), TrackerSpec::default(), SEED)
            .expect("open session");
        for (tick, obs) in observations.iter().enumerate() {
            let reply = session.push(std::slice::from_ref(obs)).expect("push tick");
            if reply.fingerprint != direct_prints[tick] {
                eprintln!(
                    "REPLAY DIVERGED: workers={workers} tick={tick}: wire fingerprint \
                     {:#018x} != direct {:#018x}",
                    reply.fingerprint, direct_prints[tick]
                );
                failed = true;
            }
        }
        let read = session.read().expect("read solution");
        for (i, served) in read.positions.iter().enumerate() {
            let expected = direct_positions
                .get(rl_core::types::NodeId(i))
                .map(|p| (p.x, p.y));
            let ok = match (served, &expected) {
                (Some(a), Some(b)) => {
                    a.0.to_bits() == b.0.to_bits() && a.1.to_bits() == b.1.to_bits()
                }
                (None, None) => true,
                _ => false,
            };
            if !ok {
                eprintln!(
                    "REPLAY DIVERGED: workers={workers}: node {i} served {served:?} but tracks \
                     directly to {expected:?}"
                );
                failed = true;
            }
        }
        session.close().expect("close session");
        client.shutdown().expect("shutdown");
        handle.join().expect("join").expect("serve");
        println!(
            "replay: workers={workers}: {} wire ticks bit-identical to the direct tracker \
             (fingerprint {final_print:#018x})",
            observations.len()
        );
    }

    // Phase 2: warm tick latency over the wire on a default server.
    let (addr, handle) = Server::spawn(ServeConfig::default()).expect("bind");
    let mut client = Client::connect(addr).expect("connect");
    let mut session = client
        .open_stream(town_source(), TrackerSpec::default(), SEED)
        .expect("open session");
    let universe = session.universe();
    let mut warm = Vec::with_capacity(observations.len() - 1);
    let mut cold = Duration::ZERO;
    for (tick, obs) in observations.iter().enumerate() {
        let t0 = Instant::now();
        session.push(std::slice::from_ref(obs)).expect("push tick");
        let elapsed = t0.elapsed();
        if tick == 0 {
            cold = elapsed;
        } else {
            warm.push(elapsed);
        }
    }
    session.close().expect("close session");
    client.shutdown().expect("shutdown");
    handle.join().expect("join").expect("serve");
    warm.sort();
    let p50 = percentile(&warm, 0.50);
    let p99 = percentile(&warm, 0.99);
    let latency = LatencyRecord {
        ticks: observations.len(),
        universe,
        cold_ms: cold.as_secs_f64() * 1e3,
        p50_ms: p50.as_secs_f64() * 1e3,
        p99_ms: p99.as_secs_f64() * 1e3,
        p99_budget_ms: WARM_P99_BUDGET.as_secs_f64() * 1e3,
    };
    println!(
        "latency: {} warm ticks over the wire at town scale ({universe} nodes): cold {cold:.2?}, \
         p50 {p50:.2?}, p99 {p99:.2?} (budget {WARM_P99_BUDGET:.0?})",
        warm.len()
    );
    if p99 > WARM_P99_BUDGET {
        eprintln!("WARM TICK BUDGET EXCEEDED: p99 {p99:.2?} > {WARM_P99_BUDGET:.0?}");
        failed = true;
    }

    // Phase 3: non-starvation. One worker, a solve floor, and a storm
    // of distinct batch jobs; interleaved stream ticks must finish
    // while the batch backlog is still draining, and every batch job
    // must still complete bit-correct.
    let config = ServeConfig::default()
        .with_workers(1)
        .with_solve_floor(STORM_FLOOR);
    let (addr, handle) = Server::spawn(config).expect("bind");
    let mut control = Client::connect(addr).expect("connect control");
    let started = Instant::now();
    let storm: Vec<_> = (0..BATCH_STORM)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect storm client");
                let seed = SEED + 1 + i as u64;
                let reply = client
                    .localize("town", "centroid", seed)
                    .expect("storm solve");
                (seed, reply, Instant::now())
            })
        })
        .collect();
    // Wait until the worker is occupied and a backlog exists, so the
    // stream ticks below genuinely compete with queued batch work.
    loop {
        let stats = control.status().expect("status");
        if stats.solves_started >= 1 && stats.batch_queued >= (BATCH_STORM as u64) / 2 {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let mut session = control
        .open_stream(town_source(), TrackerSpec::default(), SEED)
        .expect("open session");
    for obs in observations.iter().take(STORM_TICKS) {
        session.push(std::slice::from_ref(obs)).expect("storm tick");
    }
    let stream_done = started.elapsed();
    session.close().expect("close session");
    let batch_done = storm
        .into_iter()
        .map(|t| {
            let (seed, reply, finished) = t.join().expect("storm thread");
            let direct = solve_direct("town", "centroid", seed).expect("direct storm solve");
            if reply != direct {
                eprintln!("NON-STARVATION BROKE BATCH: seed {seed} reply diverges from direct");
                (true, finished)
            } else {
                (false, finished)
            }
        })
        .fold(Duration::ZERO, |acc, (bad, finished)| {
            if bad {
                failed = true;
            }
            acc.max(finished.duration_since(started))
        });
    let stats = control.status().expect("status");
    control.shutdown().expect("shutdown");
    handle.join().expect("join").expect("serve");
    let starvation = StarvationRecord {
        workers: 1,
        batch_jobs: BATCH_STORM,
        stream_ticks: STORM_TICKS,
        floor_ms: STORM_FLOOR.as_secs_f64() * 1e3,
        stream_done_ms: stream_done.as_secs_f64() * 1e3,
        batch_done_ms: batch_done.as_secs_f64() * 1e3,
    };
    println!(
        "non-starvation: {STORM_TICKS} stream ticks drained in {stream_done:.2?} against \
         {BATCH_STORM} floored batch jobs (backlog drained in {batch_done:.2?}); \
         ticks_served={} solves={}",
        stats.ticks_served, stats.solves
    );
    if stream_done >= batch_done {
        eprintln!(
            "STREAM STARVED: {STORM_TICKS} interleaved ticks took {stream_done:.2?}, not less \
             than the {batch_done:.2?} batch backlog drain"
        );
        failed = true;
    }
    if stats.ticks_served < STORM_TICKS as u64 {
        eprintln!(
            "TICKS LOST: served {} of {STORM_TICKS} storm ticks",
            stats.ticks_served
        );
        failed = true;
    }

    let bench = BenchReport {
        seed: SEED,
        replay_worker_counts,
        replay_fingerprint: final_print,
        latency,
        starvation,
    };
    let json = serde_json::to_string(&bench).expect("report serializes");
    match std::fs::write("BENCH_sessions.json", &json) {
        Ok(()) => println!("wrote BENCH_sessions.json ({} bytes)", json.len()),
        Err(e) => {
            eprintln!("FAILED to write BENCH_sessions.json: {e}");
            failed = true;
        }
    }

    if failed {
        std::process::exit(1);
    }
    println!(
        "streaming sessions: wire replay bit-identical for workers 1 and 4, warm ticks under \
         {WARM_P99_BUDGET:.0?} p99, fair sharing against a floored batch storm"
    );
}
