//! A small least-recently-used cache for solved requests.
//!
//! The serving layer keys cached [`LocalizeReply`](crate::protocol::LocalizeReply)s
//! on a problem/config fingerprint ([`rl_math::fingerprint`]), so a
//! repeat of any `(deployment, solver, seed)` triple is answered without
//! touching a solver. The cache is deliberately simple — a `HashMap`
//! plus a recency deque, `O(capacity)` on promotion — because serving
//! capacities are a few hundred entries and the alternative (an
//! intrusive linked list) buys nothing measurable at that size.

use std::collections::{HashMap, VecDeque};
use std::hash::Hash;

/// A fixed-capacity LRU map. Inserting into a full cache evicts the
/// least-recently-used entry; `get` counts as a use.
#[derive(Debug)]
pub struct LruCache<K: Eq + Hash + Clone, V> {
    capacity: usize,
    map: HashMap<K, V>,
    /// Recency order: front is least-, back is most-recently used.
    order: VecDeque<K>,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics on zero capacity (a cache that can hold nothing is a
    /// configuration error, not a useful degenerate case).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LruCache capacity must be positive");
        LruCache {
            capacity,
            map: HashMap::with_capacity(capacity),
            order: VecDeque::with_capacity(capacity),
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up `key`, promoting it to most-recently-used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        if !self.map.contains_key(key) {
            return None;
        }
        self.promote(key);
        self.map.get(key)
    }

    /// Inserts `key -> value`, evicting the least-recently-used entry if
    /// the cache is full and `key` is new. Returns the evicted entry,
    /// if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if self.map.insert(key.clone(), value).is_some() {
            self.promote(&key);
            return None;
        }
        self.order.push_back(key);
        if self.map.len() > self.capacity {
            let lru = self.order.pop_front().expect("order tracks map");
            let value = self.map.remove(&lru).expect("order tracks map");
            return Some((lru, value));
        }
        None
    }

    fn promote(&mut self, key: &K) {
        if let Some(pos) = self.order.iter().position(|k| k == key) {
            self.order.remove(pos);
            self.order.push_back(key.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        assert!(c.insert(1, "a").is_none());
        assert!(c.insert(2, "b").is_none());
        // Touch 1, making 2 the LRU.
        assert_eq!(c.get(&1), Some(&"a"));
        let evicted = c.insert(3, "c");
        assert_eq!(evicted, Some((2, "b")));
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1), Some(&"a"));
        assert_eq!(c.get(&3), Some(&"c"));
    }

    #[test]
    fn reinsert_updates_value_without_eviction() {
        let mut c = LruCache::new(2);
        c.insert(1, "a");
        c.insert(2, "b");
        assert!(c.insert(1, "a2").is_none());
        assert_eq!(c.len(), 2);
        // 2 became LRU after 1's reinsert-promotion.
        assert_eq!(c.insert(3, "c"), Some((2, "b")));
        assert_eq!(c.get(&1), Some(&"a2"));
    }

    #[test]
    fn capacity_one_behaves() {
        let mut c = LruCache::new(1);
        assert!(c.is_empty());
        c.insert(1, 10);
        assert_eq!(c.insert(2, 20), Some((1, 10)));
        assert_eq!(c.len(), 1);
        assert_eq!(c.capacity(), 1);
        assert_eq!(c.get(&2), Some(&20));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_is_rejected() {
        let _ = LruCache::<u64, ()>::new(0);
    }
}
