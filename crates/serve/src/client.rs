//! A blocking client for the `rl-serve` wire protocol.
//!
//! [`Client::connect`] opens the TCP connection and performs the
//! version handshake ([`Request::Hello`]); after that the connection is
//! a strict request/response loop, so one `Client` serves one thread.
//! Open several clients for concurrency — the server coalesces and
//! caches across connections, not per connection.
//!
//! ```no_run
//! use rl_serve::client::Client;
//!
//! let mut client = Client::connect("127.0.0.1:4105")?;
//! let reply = client.localize("town", "lss", 7)?;
//! println!("localized {} of {} nodes", reply.localized, reply.positions.len());
//! # Ok::<(), rl_serve::client::ClientError>(())
//! ```
//!
//! # Streaming sessions
//!
//! [`Client::open_stream`] returns a typed [`StreamSession`] handle for
//! protocol v2's session vocabulary: push observation deltas, read the
//! evolving solution (full or per-node), and close. The handle closes
//! its session on drop (best effort); call [`StreamSession::close`] to
//! observe the result.
//!
//! ```no_run
//! use rl_serve::client::Client;
//! use rl_serve::protocol::stream::{StreamSource, TrackerSpec};
//!
//! let mut client = Client::connect("127.0.0.1:4105")?;
//! let mut session = client.open_stream(
//!     StreamSource::Preset { name: "town-mobile".into() },
//!     TrackerSpec::default(),
//!     7,
//! )?;
//! // ... session.push(&observations)?; session.read()? ...
//! session.close()?;
//! # Ok::<(), rl_serve::client::ClientError>(())
//! ```

use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use rl_core::tracking::TickObservation;
use serde::Serialize;

use crate::protocol::{
    self, batch, stream, FrameError, LocalizeReply, Request, Response, ServerStats, WireError,
    PROTOCOL_VERSION,
};

/// Errors a client call can produce.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, or a frame the client
    /// refused to send/accept because it exceeded the size limit).
    Io(io::Error),
    /// The server replied with something the protocol does not allow at
    /// this point in the conversation (e.g. a `Status` response to a
    /// `Localize` request), or with bytes that do not decode.
    Protocol(String),
    /// The server replied with a typed [`WireError`].
    Server(WireError),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(what) => write!(f, "protocol violation: {what}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(e) => ClientError::Io(e),
            FrameError::TooLarge { declared, max } => ClientError::Io(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{declared}-byte frame exceeds the {max}-byte limit"),
            )),
        }
    }
}

/// A connected, handshaken client. See the module docs.
pub struct Client {
    stream: TcpStream,
    max_frame: usize,
    negotiated: u32,
    /// The server identification string from the handshake, e.g.
    /// `"rl-serve/0.1.0"`.
    pub server: String,
}

impl Client {
    /// Connects and performs the protocol-version handshake.
    ///
    /// # Errors
    ///
    /// Transport failures, or [`ClientError::Server`] when the server
    /// rejects this client's protocol version.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        // Strict request/response with small frames: Nagle only adds
        // latency here.
        stream.set_nodelay(true)?;
        let mut client = Client {
            stream,
            max_frame: protocol::DEFAULT_MAX_FRAME,
            negotiated: PROTOCOL_VERSION,
            server: String::new(),
        };
        match client.roundtrip(&Request::Hello {
            protocol: PROTOCOL_VERSION,
        })? {
            Response::Hello { protocol, server } => {
                client.negotiated = protocol;
                client.server = server;
                Ok(client)
            }
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(ClientError::Protocol(format!(
                "expected Hello, got {other:?}"
            ))),
        }
    }

    /// The protocol version this connection negotiated.
    pub fn negotiated(&self) -> u32 {
        self.negotiated
    }

    /// Sets a read timeout for replies (`None` blocks indefinitely,
    /// the default).
    ///
    /// # Errors
    ///
    /// Propagates the socket-option failure.
    pub fn set_reply_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    /// Sends one request and reads the raw response payload bytes (the
    /// JSON inside the frame, undecoded). The integration tests use
    /// this to assert cached responses are **byte-identical** to cold
    /// ones.
    ///
    /// # Errors
    ///
    /// Transport failures, or a clean server-side close before the
    /// reply.
    pub fn request_raw<T: Serialize>(&mut self, request: &T) -> Result<Vec<u8>, ClientError> {
        protocol::send(&mut self.stream, request, self.max_frame)?;
        match protocol::read_frame(&mut self.stream, self.max_frame)? {
            Some(payload) => Ok(payload),
            None => Err(ClientError::Protocol(
                "server closed the connection before replying".into(),
            )),
        }
    }

    fn roundtrip(&mut self, request: &Request) -> Result<Response, ClientError> {
        let payload = self.request_raw(request)?;
        protocol::decode(&payload).map_err(ClientError::Protocol)
    }

    /// Localizes `deployment` with `solver` under `seed`. Deterministic:
    /// the reply is bit-identical to [`crate::server::solve_direct`] for
    /// the same triple, whether it was solved, coalesced, or cached.
    ///
    /// # Errors
    ///
    /// Transport failures, typed server errors (unknown deployment or
    /// solver, failed solve, shutdown), or protocol violations.
    pub fn localize(
        &mut self,
        deployment: &str,
        solver: &str,
        seed: u64,
    ) -> Result<LocalizeReply, ClientError> {
        match self.roundtrip(&Request::localize(deployment, solver, seed))? {
            Response::Batch(batch::Response::Localized(reply)) => Ok(reply),
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(ClientError::Protocol(format!(
                "expected Localized, got {other:?}"
            ))),
        }
    }

    /// Localizes like [`Client::localize`] but asks only for `nodes`
    /// (protocol v2). The reply is **byte-identical** to slicing the
    /// full frame with
    /// [`Projection::slice`](crate::protocol::batch::Projection::slice),
    /// and is served against the same cache as full frames.
    ///
    /// # Errors
    ///
    /// Transport failures, typed server errors
    /// ([`crate::protocol::ErrorCode::UnknownNode`] for out-of-universe
    /// ids), or protocol violations.
    pub fn localize_nodes(
        &mut self,
        deployment: &str,
        solver: &str,
        seed: u64,
        nodes: &[u64],
    ) -> Result<batch::Projection, ClientError> {
        let request = Request::Batch(batch::Request::Localize {
            deployment: deployment.to_string(),
            solver: solver.to_string(),
            seed,
            nodes: Some(nodes.to_vec()),
        });
        match self.roundtrip(&request)? {
            Response::Batch(batch::Response::Projected(projection)) => Ok(projection),
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(ClientError::Protocol(format!(
                "expected Projected, got {other:?}"
            ))),
        }
    }

    /// Fetches the server's counters and registry snapshot.
    ///
    /// # Errors
    ///
    /// Transport failures, typed server errors, or protocol violations.
    pub fn status(&mut self) -> Result<ServerStats, ClientError> {
        match self.roundtrip(&Request::Batch(batch::Request::Status))? {
            Response::Batch(batch::Response::Status(stats)) => Ok(stats),
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(ClientError::Protocol(format!(
                "expected Status, got {other:?}"
            ))),
        }
    }

    /// Asks the server to shut down gracefully (drain in-flight solves,
    /// then exit its accept loop). Returns once the server acknowledges.
    ///
    /// # Errors
    ///
    /// Transport failures, typed server errors, or protocol violations.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Batch(batch::Request::Shutdown))? {
            Response::Batch(batch::Response::ShuttingDown) => Ok(()),
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(ClientError::Protocol(format!(
                "expected ShuttingDown, got {other:?}"
            ))),
        }
    }

    /// Opens a server-owned streaming session (protocol v2) and returns
    /// its typed handle. The handle borrows this client — the protocol
    /// is strict request/response, so session traffic and other requests
    /// share the connection sequentially.
    ///
    /// # Errors
    ///
    /// Transport failures, typed server errors (unknown source or
    /// tracker preset, session capacity), or protocol violations.
    pub fn open_stream(
        &mut self,
        source: stream::StreamSource,
        tracker: stream::TrackerSpec,
        seed: u64,
    ) -> Result<StreamSession<'_>, ClientError> {
        let request = Request::Stream(stream::Request::OpenStream {
            source,
            tracker,
            seed,
        });
        match self.roundtrip(&request)? {
            Response::Stream(stream::Response::StreamOpened { session, universe }) => {
                Ok(StreamSession {
                    client: self,
                    session,
                    universe,
                    open: true,
                })
            }
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(ClientError::Protocol(format!(
                "expected StreamOpened, got {other:?}"
            ))),
        }
    }
}

/// A typed handle over one streaming session (see [`Client::open_stream`]).
///
/// The handle sends `CloseStream` when dropped (best effort, result
/// discarded); call [`StreamSession::close`] to observe the close.
/// Sessions are server-owned and survive the handle: keep
/// [`StreamSession::token`] to re-adopt one later with
/// [`StreamSession::adopt`].
pub struct StreamSession<'a> {
    client: &'a mut Client,
    session: u64,
    universe: u64,
    open: bool,
}

impl std::fmt::Debug for StreamSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamSession")
            .field("session", &self.session)
            .field("universe", &self.universe)
            .field("open", &self.open)
            .finish_non_exhaustive()
    }
}

impl<'a> StreamSession<'a> {
    /// Re-adopts an already-open session by token (e.g. after
    /// reconnecting): the server keeps session state across connections.
    /// No request is sent — the first push/read validates the token.
    pub fn adopt(client: &'a mut Client, token: u64, universe: u64) -> StreamSession<'a> {
        StreamSession {
            client,
            session: token,
            universe,
            open: true,
        }
    }

    /// The session's capability token.
    pub fn token(&self) -> u64 {
        self.session
    }

    /// The session's node-universe size; every pushed observation must
    /// declare exactly this universe.
    pub fn universe(&self) -> u64 {
        self.universe
    }

    /// Pushes observation deltas through the session's tracker, in
    /// order. The reply's fingerprint is deterministic: identical to
    /// driving a [`StreamingTracker`](rl_core::tracking::StreamingTracker)
    /// with the same configuration over the same stream, in process.
    ///
    /// # Errors
    ///
    /// Transport failures, typed server errors (unknown/evicted session,
    /// full mailbox, invalid observation, failed tick), or protocol
    /// violations.
    pub fn push(
        &mut self,
        observations: &[TickObservation],
    ) -> Result<stream::PushReply, ClientError> {
        let wire = observations
            .iter()
            .map(stream::WireObservation::from_observation)
            .collect::<Vec<_>>();
        self.push_wire(&wire)
    }

    /// Pushes already-encoded observations (the zero-copy path for
    /// callers that hold wire form).
    ///
    /// # Errors
    ///
    /// As [`StreamSession::push`].
    pub fn push_wire(
        &mut self,
        observations: &[stream::WireObservation],
    ) -> Result<stream::PushReply, ClientError> {
        let request = Request::Stream(stream::Request::PushTicks {
            session: self.session,
            observations: observations.to_vec(),
        });
        match self.client.roundtrip(&request)? {
            Response::Stream(stream::Response::TicksPushed(reply)) => Ok(reply),
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(ClientError::Protocol(format!(
                "expected TicksPushed, got {other:?}"
            ))),
        }
    }

    /// Reads the session's latest full-frame solution.
    ///
    /// # Errors
    ///
    /// Transport failures, typed server errors (unknown/evicted session,
    /// no solution yet), or protocol violations.
    pub fn read(&mut self) -> Result<stream::SolutionReply, ClientError> {
        self.read_request(None)
    }

    /// Reads only `nodes` from the session's latest solution. The reply
    /// is byte-identical to slicing the full frame, and carries the
    /// full solution's fingerprint.
    ///
    /// # Errors
    ///
    /// As [`StreamSession::read`], plus
    /// [`crate::protocol::ErrorCode::UnknownNode`] for out-of-universe
    /// ids.
    pub fn read_nodes(&mut self, nodes: &[u64]) -> Result<stream::SolutionReply, ClientError> {
        self.read_request(Some(nodes.to_vec()))
    }

    fn read_request(
        &mut self,
        nodes: Option<Vec<u64>>,
    ) -> Result<stream::SolutionReply, ClientError> {
        let request = Request::Stream(stream::Request::ReadSolution {
            session: self.session,
            nodes,
        });
        match self.client.roundtrip(&request)? {
            Response::Stream(stream::Response::Solution(reply)) => Ok(reply),
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(ClientError::Protocol(format!(
                "expected Solution, got {other:?}"
            ))),
        }
    }

    /// Closes the session and returns the ticks it consumed. After
    /// this, the handle is spent (drop does nothing more).
    ///
    /// # Errors
    ///
    /// Transport failures, typed server errors, or protocol violations.
    pub fn close(mut self) -> Result<u64, ClientError> {
        self.open = false;
        let request = Request::Stream(stream::Request::CloseStream {
            session: self.session,
        });
        match self.client.roundtrip(&request)? {
            Response::Stream(stream::Response::StreamClosed { ticks, .. }) => Ok(ticks),
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(ClientError::Protocol(format!(
                "expected StreamClosed, got {other:?}"
            ))),
        }
    }

    /// Releases the handle *without* closing the server-side session
    /// (for handing the token to another connection).
    pub fn leak(mut self) -> u64 {
        self.open = false;
        self.session
    }
}

impl Drop for StreamSession<'_> {
    fn drop(&mut self) {
        if self.open {
            // Best effort: a dead connection just leaves the session to
            // the server's TTL.
            let request = Request::Stream(stream::Request::CloseStream {
                session: self.session,
            });
            let _ = self.client.roundtrip(&request);
        }
    }
}
