//! A blocking client for the `rl-serve` wire protocol.
//!
//! [`Client::connect`] opens the TCP connection and performs the
//! version handshake ([`Request::Hello`]); after that the connection is
//! a strict request/response loop, so one `Client` serves one thread.
//! Open several clients for concurrency — the server coalesces and
//! caches across connections, not per connection.
//!
//! ```no_run
//! use rl_serve::client::Client;
//!
//! let mut client = Client::connect("127.0.0.1:4105")?;
//! let reply = client.localize("town", "lss", 7)?;
//! println!("localized {} of {} nodes", reply.localized, reply.positions.len());
//! # Ok::<(), rl_serve::client::ClientError>(())
//! ```

use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use serde::Serialize;

use crate::protocol::{
    self, FrameError, LocalizeReply, Request, Response, ServerStats, WireError, PROTOCOL_VERSION,
};

/// Errors a client call can produce.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, or a frame the client
    /// refused to send/accept because it exceeded the size limit).
    Io(io::Error),
    /// The server replied with something the protocol does not allow at
    /// this point in the conversation (e.g. a `Status` response to a
    /// `Localize` request), or with bytes that do not decode.
    Protocol(String),
    /// The server replied with a typed [`WireError`].
    Server(WireError),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(what) => write!(f, "protocol violation: {what}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(e) => ClientError::Io(e),
            FrameError::TooLarge { declared, max } => ClientError::Io(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{declared}-byte frame exceeds the {max}-byte limit"),
            )),
        }
    }
}

/// A connected, handshaken client. See the module docs.
pub struct Client {
    stream: TcpStream,
    max_frame: usize,
    /// The server identification string from the handshake, e.g.
    /// `"rl-serve/0.1.0"`.
    pub server: String,
}

impl Client {
    /// Connects and performs the protocol-version handshake.
    ///
    /// # Errors
    ///
    /// Transport failures, or [`ClientError::Server`] when the server
    /// rejects this client's protocol version.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        // Strict request/response with small frames: Nagle only adds
        // latency here.
        stream.set_nodelay(true)?;
        let mut client = Client {
            stream,
            max_frame: protocol::DEFAULT_MAX_FRAME,
            server: String::new(),
        };
        match client.roundtrip(&Request::Hello {
            protocol: PROTOCOL_VERSION,
        })? {
            Response::Hello { server, .. } => {
                client.server = server;
                Ok(client)
            }
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(ClientError::Protocol(format!(
                "expected Hello, got {other:?}"
            ))),
        }
    }

    /// Sets a read timeout for replies (`None` blocks indefinitely,
    /// the default).
    ///
    /// # Errors
    ///
    /// Propagates the socket-option failure.
    pub fn set_reply_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    /// Sends one request and reads the raw response payload bytes (the
    /// JSON inside the frame, undecoded). The integration tests use
    /// this to assert cached responses are **byte-identical** to cold
    /// ones.
    ///
    /// # Errors
    ///
    /// Transport failures, or a clean server-side close before the
    /// reply.
    pub fn request_raw<T: Serialize>(&mut self, request: &T) -> Result<Vec<u8>, ClientError> {
        protocol::send(&mut self.stream, request, self.max_frame)?;
        match protocol::read_frame(&mut self.stream, self.max_frame)? {
            Some(payload) => Ok(payload),
            None => Err(ClientError::Protocol(
                "server closed the connection before replying".into(),
            )),
        }
    }

    fn roundtrip(&mut self, request: &Request) -> Result<Response, ClientError> {
        let payload = self.request_raw(request)?;
        protocol::decode(&payload).map_err(ClientError::Protocol)
    }

    /// Localizes `deployment` with `solver` under `seed`. Deterministic:
    /// the reply is bit-identical to [`crate::server::solve_direct`] for
    /// the same triple, whether it was solved, coalesced, or cached.
    ///
    /// # Errors
    ///
    /// Transport failures, typed server errors (unknown deployment or
    /// solver, failed solve, shutdown), or protocol violations.
    pub fn localize(
        &mut self,
        deployment: &str,
        solver: &str,
        seed: u64,
    ) -> Result<LocalizeReply, ClientError> {
        match self.roundtrip(&Request::Localize {
            deployment: deployment.to_string(),
            solver: solver.to_string(),
            seed,
        })? {
            Response::Localized(reply) => Ok(reply),
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(ClientError::Protocol(format!(
                "expected Localized, got {other:?}"
            ))),
        }
    }

    /// Fetches the server's counters and registry snapshot.
    ///
    /// # Errors
    ///
    /// Transport failures, typed server errors, or protocol violations.
    pub fn status(&mut self) -> Result<ServerStats, ClientError> {
        match self.roundtrip(&Request::Status)? {
            Response::Status(stats) => Ok(stats),
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(ClientError::Protocol(format!(
                "expected Status, got {other:?}"
            ))),
        }
    }

    /// Asks the server to shut down gracefully (drain in-flight solves,
    /// then exit its accept loop). Returns once the server acknowledges.
    ///
    /// # Errors
    ///
    /// Transport failures, typed server errors, or protocol violations.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(ClientError::Protocol(format!(
                "expected ShuttingDown, got {other:?}"
            ))),
        }
    }
}
