//! Localization-as-a-service: a long-lived server for the resilient
//! localization stack.
//!
//! The paper's pipeline solves one problem and exits; a deployed
//! positioning service answers a *stream* of localization queries
//! against a fixed set of instantiated deployments. This crate provides
//! that serving layer, std-only (no async runtime, no network crates —
//! `std::net` and threads), with four production behaviors:
//!
//! * **Concurrency** — a fixed worker pool drains the shared job queues
//!   ([`server`]).
//! * **Batching** — concurrent identical requests coalesce into one
//!   shared solve whose result fans out to every waiter.
//! * **Caching** — completed solutions land in an LRU keyed by a
//!   problem/config fingerprint ([`cache`]), and a cached response is
//!   **bit-identical** to the cold one.
//! * **Sessions** — protocol v2's `stream` namespace puts the tracking
//!   layer behind the wire: server-owned
//!   [`StreamingTracker`](rl_core::tracking::StreamingTracker) sessions
//!   ([`session`]) fed by client-pushed observation deltas, with TTL
//!   eviction, bounded per-session mailboxes, and a two-class
//!   weighted-fair scheduler sharing the worker pool with batch solves.
//!
//! Modules:
//!
//! * [`protocol`] — the wire protocol: length-prefixed JSON frames, the
//!   `batch`/`stream` namespaces, versioning, typed errors,
//! * [`server`] — [`Server`], the worker pool, coalescing, the
//!   weighted-fair scheduler, and the graceful lifecycle,
//! * [`session`] — [`SessionManager`], the
//!   injectable [`Clock`], and TTL eviction,
//! * [`client`] — [`Client`], a blocking handshaken client, and its
//!   typed [`StreamSession`] handle,
//! * [`cache`] — the LRU solution cache.
//!
//! # Example
//!
//! Serve on an ephemeral port, localize the paper's parking lot, and
//! shut the server down:
//!
//! ```
//! use rl_serve::{Client, ServeConfig, Server};
//!
//! let (addr, handle) = Server::spawn(ServeConfig::default()).unwrap();
//! let mut client = Client::connect(addr).unwrap();
//!
//! let reply = client.localize("parking-lot", "multilateration", 7).unwrap();
//! assert_eq!(reply.positions.len(), 15);
//! assert!(reply.localized > 0);
//!
//! // Bit-identical to the in-process solve of the same triple.
//! let direct = rl_serve::server::solve_direct("parking-lot", "multilateration", 7).unwrap();
//! assert_eq!(reply, direct);
//!
//! client.shutdown().unwrap();
//! handle.join().unwrap().unwrap();
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod client;
pub mod protocol;
pub mod server;
pub mod session;

pub use client::{Client, ClientError, StreamSession};
pub use protocol::{
    ErrorCode, LocalizeReply, Request, Response, ServerStats, WireError, MIN_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
};
pub use server::{ServeConfig, Server};
pub use session::{Clock, ManualClock, SessionManager, SystemClock};
