//! Localization-as-a-service: a long-lived server for the resilient
//! localization stack.
//!
//! The paper's pipeline solves one problem and exits; a deployed
//! positioning service answers a *stream* of localization queries
//! against a fixed set of instantiated deployments. This crate provides
//! that serving layer, std-only (no async runtime, no network crates —
//! `std::net` and threads), with three production behaviors:
//!
//! * **Concurrency** — a fixed worker pool drains a shared solve queue
//!   ([`server`]).
//! * **Batching** — concurrent identical requests coalesce into one
//!   shared solve whose result fans out to every waiter.
//! * **Caching** — completed solutions land in an LRU keyed by a
//!   problem/config fingerprint ([`cache`]), and a cached response is
//!   **bit-identical** to the cold one.
//!
//! Modules:
//!
//! * [`protocol`] — the wire protocol: length-prefixed JSON frames,
//!   request/response schemas, versioning, typed errors,
//! * [`server`] — [`Server`], the worker pool, coalescing, and the
//!   graceful lifecycle,
//! * [`client`] — [`Client`], a blocking handshaken client,
//! * [`cache`] — the LRU solution cache.
//!
//! # Example
//!
//! Serve on an ephemeral port, localize the paper's parking lot, and
//! shut the server down:
//!
//! ```
//! use rl_serve::{Client, ServeConfig, Server};
//!
//! let (addr, handle) = Server::spawn(ServeConfig::default()).unwrap();
//! let mut client = Client::connect(addr).unwrap();
//!
//! let reply = client.localize("parking-lot", "multilateration", 7).unwrap();
//! assert_eq!(reply.positions.len(), 15);
//! assert!(reply.localized > 0);
//!
//! // Bit-identical to the in-process solve of the same triple.
//! let direct = rl_serve::server::solve_direct("parking-lot", "multilateration", 7).unwrap();
//! assert_eq!(reply, direct);
//!
//! client.shutdown().unwrap();
//! handle.join().unwrap().unwrap();
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod client;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError};
pub use protocol::{
    ErrorCode, LocalizeReply, Request, Response, ServerStats, WireError, PROTOCOL_VERSION,
};
pub use server::{ServeConfig, Server};
