//! The `rl-serve` server binary.
//!
//! ```text
//! rl-serve [--addr HOST:PORT] [--workers N]
//! ```
//!
//! Binds (default `127.0.0.1:4105`), prints the serveable deployment and
//! solver registries, and serves until a client sends a `Shutdown`
//! request.

use std::process::ExitCode;

use rl_serve::server::SOLVER_NAMES;
use rl_serve::{ServeConfig, Server};

fn usage() -> ExitCode {
    eprintln!("usage: rl-serve [--addr HOST:PORT] [--workers N]");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut config = ServeConfig::default().with_addr("127.0.0.1:4105");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(addr) => config = config.with_addr(addr),
                None => return usage(),
            },
            "--workers" => match args.next().and_then(|w| w.parse().ok()) {
                Some(workers) => config = config.with_workers(workers),
                None => return usage(),
            },
            "--help" | "-h" => {
                println!("usage: rl-serve [--addr HOST:PORT] [--workers N]");
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }

    let server = match Server::bind(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("rl-serve: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("rl-serve listening on {}", server.local_addr());
    println!("deployments: {}", rl_deploy::presets::NAMES.join(", "));
    println!("solvers:     {}", SOLVER_NAMES.join(", "));
    match server.run() {
        Ok(()) => {
            println!("rl-serve: shut down cleanly");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("rl-serve: {e}");
            ExitCode::FAILURE
        }
    }
}
