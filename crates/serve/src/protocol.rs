//! The wire protocol: length-prefixed `serde_json` frames over TCP.
//!
//! # Frame format
//!
//! Every message — in either direction — is one *frame*:
//!
//! ```text
//! +----------------+---------------------------+
//! | length: u32 BE | payload: `length` bytes   |
//! +----------------+---------------------------+
//! ```
//!
//! The payload is the UTF-8 JSON encoding (via the vendored `serde_json`
//! shim) of one [`Request`] or [`Response`]. The length prefix counts
//! payload bytes only. Frames larger than the receiver's configured
//! maximum ([`DEFAULT_MAX_FRAME`] by default) are rejected with
//! [`ErrorCode::FrameTooLarge`]; because an oversized declaration leaves
//! the byte stream unsynchronized, the connection is closed after the
//! error response. A frame whose payload is not valid JSON for the
//! expected type is rejected with [`ErrorCode::MalformedFrame`] — the
//! frame boundary itself was still intact, so the connection stays open.
//!
//! # Conversation shape
//!
//! The protocol is strict request/response: a client sends one frame and
//! reads one frame back; there is no pipelining and the server never
//! pushes unsolicited frames. A connection serves any number of
//! requests.
//!
//! # Namespaces (v2)
//!
//! Version 2 splits the message space into two namespaces plus a small
//! shared envelope:
//!
//! * **[`batch`]** — the stateless requests: one-shot preset solves
//!   ([`batch::Request::Localize`], optionally projected to a node
//!   subset), counters, shutdown. Exactly the v1 vocabulary, so a v1
//!   frame is also a valid v2 frame.
//! * **[`stream`]** — the session-scoped requests: open a server-owned
//!   [`StreamingTracker`](rl_core::tracking::StreamingTracker) session,
//!   push [`TickObservation`](rl_core::tracking::TickObservation)
//!   deltas through it, read full or per-node solutions, close.
//! * **Envelope** — [`Request::Hello`] (version negotiation, shared by
//!   both namespaces) and [`Response::Error`] (typed failures).
//!
//! On the wire the envelope is *flat*: the namespace is a type-level
//! grouping, not a JSON nesting, so `{"Localize":{...}}` means the same
//! bytes in v1 and v2. This is load-bearing — the v1 compatibility
//! contract below depends on it.
//!
//! # Versioning
//!
//! Clients should open with [`Request::Hello`] carrying their version;
//! the server accepts anything in
//! [`MIN_PROTOCOL_VERSION`]`..=`[`PROTOCOL_VERSION`] and answers
//! [`Response::Hello`] echoing the *negotiated* (client's) version, or
//! [`ErrorCode::UnsupportedProtocol`] outside that range. A connection
//! negotiated at v1 is batch-only: stream requests and the v2-only
//! `nodes` projection are rejected with
//! [`ErrorCode::UnsupportedProtocol`]. A connection that never says
//! `Hello` is assumed current-version. **v1 compatibility is a byte
//! contract**: a v1 client's `Localize` round-trip — request bytes in,
//! response bytes out — is bit-identical to what a v1 server produced
//! (pinned by golden-frame tests). The version is bumped whenever an
//! existing field or variant changes meaning; purely additive variants
//! and fields keep the version (unknown variants already fail closed as
//! [`ErrorCode::MalformedFrame`], and absent newer `Option` fields read
//! as `None`).
//!
//! # Determinism
//!
//! Replies deliberately carry only *deterministic* content — positions,
//! iteration counts, convergence, fingerprints — and no wall-clock or
//! delivery metadata (whether a response was served from cache,
//! coalesced, or solved cold is observable only through
//! [`batch::Request::Status`] counters). This is what makes the cache
//! and session contracts testable at the byte level: the response frame
//! for a cached solve is **bit-identical** to the frame the cold solve
//! produced, a projected reply is bit-identical to slicing the full
//! frame, and a wire-driven tracker session fingerprint-matches a
//! directly-driven
//! [`StreamingTracker`](rl_core::tracking::StreamingTracker) on the
//! same observation stream, for any worker count — because the vendored
//! `serde_json` shim round-trips every finite `f64` exactly and nothing
//! schedule-dependent is ever serialized.
//!
//! # Session counters
//!
//! [`ServerStats`] exposes the fairness policy's observability surface:
//!
//! * `sessions_open` — streaming sessions currently alive (a gauge),
//! * `sessions_evicted` — sessions reaped by the idle TTL (cumulative),
//! * `session_capacity` — the configured open-session bound,
//! * `ticks_served` — observations accepted by session trackers
//!   (cumulative),
//! * `batch_queued` / `stream_queued` — per-class queue depths (gauges);
//!   `queued` is their sum, keeping its v1 meaning of "jobs waiting".

use std::io::{self, Read, Write};

use serde::{Deserialize, Error as SerdeError, Serialize, Value};

/// Current protocol version. See the module docs for the bump policy.
pub const PROTOCOL_VERSION: u32 = 2;

/// Oldest protocol version the server still negotiates. v1 connections
/// are batch-only (see the module docs).
pub const MIN_PROTOCOL_VERSION: u32 = 1;

/// Default maximum frame size (1 MiB): comfortably above a metro-1000
/// [`LocalizeReply`] (~50 KiB), far below anything a hostile or confused
/// peer could use to balloon server memory.
pub const DEFAULT_MAX_FRAME: usize = 1 << 20;

/// A client-to-server message: the version handshake plus the two
/// namespaces, flattened on the wire (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Version handshake; answered by [`Response::Hello`].
    Hello {
        /// The client's protocol version (≤ [`PROTOCOL_VERSION`]).
        protocol: u32,
    },
    /// A stateless request (localize, status, shutdown).
    Batch(batch::Request),
    /// A session-scoped streaming request.
    Stream(stream::Request),
}

impl Request {
    /// Convenience constructor for the common case: a full-frame
    /// [`batch::Request::Localize`].
    pub fn localize(deployment: impl Into<String>, solver: impl Into<String>, seed: u64) -> Self {
        Request::Batch(batch::Request::Localize {
            deployment: deployment.into(),
            solver: solver.into(),
            seed,
            nodes: None,
        })
    }
}

impl From<batch::Request> for Request {
    fn from(r: batch::Request) -> Self {
        Request::Batch(r)
    }
}

impl From<stream::Request> for Request {
    fn from(r: stream::Request) -> Self {
        Request::Stream(r)
    }
}

/// A server-to-client message: the handshake answer, typed errors, and
/// the two namespaces, flattened on the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Handshake answer.
    Hello {
        /// The negotiated protocol version this connection will speak.
        protocol: u32,
        /// Human-readable server identifier.
        server: String,
    },
    /// A stateless reply.
    Batch(batch::Response),
    /// A session-scoped streaming reply.
    Stream(stream::Response),
    /// A typed failure; the connection stays open unless the error is a
    /// framing-level one ([`ErrorCode::FrameTooLarge`]).
    Error(WireError),
}

impl From<batch::Response> for Response {
    fn from(r: batch::Response) -> Self {
        Response::Batch(r)
    }
}

impl From<stream::Response> for Response {
    fn from(r: stream::Response) -> Self {
        Response::Stream(r)
    }
}

/// Builds the single-entry map a JSON enum variant encodes to.
fn variant(name: &str, payload: Value) -> Value {
    Value::Map(vec![(Value::Str(name.to_string()), payload)])
}

/// The variant tag of a serialized enum: the string itself for unit
/// variants, the single key for payload-carrying ones.
fn variant_tag(value: &Value) -> Result<&str, SerdeError> {
    match value {
        Value::Str(s) => Ok(s),
        Value::Map(entries) if entries.len() == 1 => entries[0]
            .0
            .as_str()
            .ok_or_else(|| SerdeError::custom("enum variant key must be a string")),
        other => Err(SerdeError::expected("enum variant", other)),
    }
}

/// The payload of a payload-carrying variant (the single map value).
fn variant_payload(value: &Value) -> Result<&Value, SerdeError> {
    match value {
        Value::Map(entries) if entries.len() == 1 => Ok(&entries[0].1),
        other => Err(SerdeError::expected("single-variant map", other)),
    }
}

// The envelope's serde impls are manual so the namespaces stay flat on
// the wire: `Request::Batch(Localize{..})` must serialize to exactly the
// bytes v1's un-namespaced `Request::Localize{..}` produced. A derived
// impl would nest (`{"Batch":{"Localize":{..}}}`) and break the byte
// contract.
impl Serialize for Request {
    fn to_value(&self) -> Value {
        match self {
            Request::Hello { protocol } => variant(
                "Hello",
                Value::Map(vec![(
                    Value::Str("protocol".to_string()),
                    protocol.to_value(),
                )]),
            ),
            Request::Batch(r) => r.to_value(),
            Request::Stream(r) => r.to_value(),
        }
    }
}

impl Deserialize for Request {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        match variant_tag(value)? {
            "Hello" => {
                let payload = variant_payload(value)?;
                let entries = payload
                    .as_map()
                    .ok_or_else(|| SerdeError::expected("Hello payload map", payload))?;
                Ok(Request::Hello {
                    protocol: serde::__get_field(entries, "protocol")?,
                })
            }
            "Localize" | "Status" | "Shutdown" => {
                batch::Request::from_value(value).map(Request::Batch)
            }
            "OpenStream" | "PushTicks" | "ReadSolution" | "CloseStream" => {
                stream::Request::from_value(value).map(Request::Stream)
            }
            other => Err(SerdeError::custom(format!(
                "unknown Request variant `{other}`"
            ))),
        }
    }
}

impl Serialize for Response {
    fn to_value(&self) -> Value {
        match self {
            Response::Hello { protocol, server } => variant(
                "Hello",
                Value::Map(vec![
                    (Value::Str("protocol".to_string()), protocol.to_value()),
                    (Value::Str("server".to_string()), server.to_value()),
                ]),
            ),
            Response::Batch(r) => r.to_value(),
            Response::Stream(r) => r.to_value(),
            // Tuple-variant encoding, matching v1's derived impl.
            Response::Error(e) => variant("Error", Value::Seq(vec![e.to_value()])),
        }
    }
}

impl Deserialize for Response {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        match variant_tag(value)? {
            "Hello" => {
                let payload = variant_payload(value)?;
                let entries = payload
                    .as_map()
                    .ok_or_else(|| SerdeError::expected("Hello payload map", payload))?;
                Ok(Response::Hello {
                    protocol: serde::__get_field(entries, "protocol")?,
                    server: serde::__get_field(entries, "server")?,
                })
            }
            "Error" => {
                let payload = variant_payload(value)?;
                let items = payload
                    .as_seq()
                    .ok_or_else(|| SerdeError::expected("Error payload sequence", payload))?;
                match items {
                    [e] => Ok(Response::Error(WireError::from_value(e)?)),
                    _ => Err(SerdeError::custom("Error payload must hold one value")),
                }
            }
            "Localized" | "Projected" | "Status" | "ShuttingDown" => {
                batch::Response::from_value(value).map(Response::Batch)
            }
            "StreamOpened" | "TicksPushed" | "Solution" | "StreamClosed" => {
                stream::Response::from_value(value).map(Response::Stream)
            }
            other => Err(SerdeError::custom(format!(
                "unknown Response variant `{other}`"
            ))),
        }
    }
}

pub mod batch {
    //! The stateless namespace: one-shot preset solves and server
    //! control. This is exactly the v1 vocabulary — every v1 frame is a
    //! valid frame of this namespace, byte for byte — plus the additive
    //! `nodes` projection on [`Request::Localize`].

    use super::{ErrorCode, LocalizeReply, ServerStats, WireError};
    use serde::{Deserialize, Serialize};

    /// A stateless client-to-server message.
    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    pub enum Request {
        /// Localize a preset deployment: answered by
        /// [`Response::Localized`] (possibly from cache or a coalesced
        /// shared solve), [`Response::Projected`] when `nodes` asks for
        /// a subset, or a typed error.
        Localize {
            /// Preset deployment name (see `rl_deploy::presets`).
            deployment: String,
            /// Solver registry name, e.g. `"lss"` or `"mds-map"`.
            solver: String,
            /// Measurement-instantiation seed; the same
            /// `(deployment, solver, seed)` triple always yields the
            /// same reply, bit for bit.
            seed: u64,
            /// Optional per-node projection (v2): answer with only these
            /// node ids' positions, served against the same cache as
            /// full frames and **byte-identical** to slicing one
            /// ([`Projection::slice`]). `None` (or absent, as every v1
            /// frame has it) returns the full frame.
            nodes: Option<Vec<u64>>,
        },
        /// Server statistics snapshot; answered by [`Response::Status`].
        Status,
        /// Graceful shutdown: the server finishes in-flight work,
        /// answers [`Response::ShuttingDown`], and stops accepting
        /// connections.
        Shutdown,
    }

    /// A stateless server-to-client message.
    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    pub enum Response {
        /// A completed full-frame localize request.
        Localized(LocalizeReply),
        /// A completed projected localize request (v2).
        Projected(Projection),
        /// A statistics snapshot.
        Status(ServerStats),
        /// Acknowledges [`Request::Shutdown`]; the connection closes
        /// after this frame.
        ShuttingDown,
    }

    /// A per-node slice of a [`LocalizeReply`]: the answer to a
    /// `Localize` with `nodes`. Carries the same deterministic content
    /// as the full frame, restricted to the requested ids.
    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    pub struct Projection {
        /// Echo of the requested deployment preset.
        pub deployment: String,
        /// Echo of the requested solver.
        pub solver: String,
        /// Echo of the request seed.
        pub seed: u64,
        /// `"absolute"` or `"relative"` — the coordinate frame.
        pub frame: String,
        /// Echo of the requested node ids, in request order.
        pub nodes: Vec<u64>,
        /// Estimated position per requested id, aligned with `nodes`.
        pub positions: Vec<Option<(f64, f64)>>,
        /// Nodes with a position estimate, out of `nodes.len()`.
        pub localized: u64,
    }

    impl Projection {
        /// Slices a full reply down to `nodes`. This is the *defining*
        /// computation of a projection: the server answers a projected
        /// request by running exactly this over the same (possibly
        /// cached) full reply, so a served [`Response::Projected`] frame
        /// is byte-identical to slicing the full frame client-side.
        ///
        /// # Errors
        ///
        /// [`ErrorCode::UnknownNode`] when an id is outside the reply's
        /// universe.
        pub fn slice(reply: &LocalizeReply, nodes: &[u64]) -> Result<Projection, WireError> {
            let mut positions = Vec::with_capacity(nodes.len());
            let mut localized = 0u64;
            for &id in nodes {
                let slot = usize::try_from(id)
                    .ok()
                    .filter(|&i| i < reply.positions.len())
                    .ok_or_else(|| {
                        WireError::new(
                            ErrorCode::UnknownNode,
                            format!(
                                "node {id} outside the {}-node deployment",
                                reply.positions.len()
                            ),
                        )
                    })?;
                let p = reply.positions[slot];
                if p.is_some() {
                    localized += 1;
                }
                positions.push(p);
            }
            Ok(Projection {
                deployment: reply.deployment.clone(),
                solver: reply.solver.clone(),
                seed: reply.seed,
                frame: reply.frame.clone(),
                nodes: nodes.to_vec(),
                positions,
                localized,
            })
        }
    }
}

pub mod stream {
    //! The session-scoped namespace: server-owned
    //! [`StreamingTracker`](rl_core::tracking::StreamingTracker)
    //! sessions driven by client-pushed observation deltas.
    //!
    //! # Session lifecycle
    //!
    //! ```text
    //! OpenStream ──► StreamOpened{session}          (token = capability)
    //!     PushTicks{session} ──► TicksPushed        (any number of times)
    //!     ReadSolution{session} ──► Solution        (full or per-node)
    //! CloseStream{session} ──► StreamClosed
    //! ```
    //!
    //! Sessions are server-owned and outlive connections: the token is
    //! the capability, so a client may reconnect and continue a session.
    //! Idle sessions are reaped by a TTL
    //! ([`ErrorCode::SessionEvicted`] on later use); unknown or closed
    //! tokens answer [`ErrorCode::UnknownSession`].
    //!
    //! # Determinism
    //!
    //! A session's replies are a pure function of
    //! `(OpenStream, observation sequence)`: [`PushReply::fingerprint`]
    //! and [`SolutionReply::fingerprint`] match
    //! [`solution_fingerprint`](rl_core::tracking::solution_fingerprint)
    //! of a directly-driven tracker on the same stream, for any worker
    //! count and any batch/stream interleaving.

    use rl_core::tracking::TickObservation;
    use rl_core::types::{Anchor, NodeId};
    use rl_deploy::mobility::{ChurnModel, MotionModel};
    use rl_geom::Point2;
    use rl_ranging::measurement::MeasurementSet;
    use serde::{Deserialize, Serialize};

    use super::{ErrorCode, WireError};

    /// Largest node universe a pushed observation may declare. Bounds
    /// server-side allocation before any validation has run; far above
    /// every preset (metro-2500) and far below anything that could
    /// balloon memory.
    pub const MAX_UNIVERSE: u64 = 100_000;

    /// A session-scoped client-to-server message.
    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    pub enum Request {
        /// Creates a server-owned tracker session; answered by
        /// [`Response::StreamOpened`] carrying the session token.
        OpenStream {
            /// What network the observations will describe (fixes the
            /// node universe and the session's identity).
            source: StreamSource,
            /// Tracker configuration.
            tracker: TrackerSpec,
            /// Tracker seed: the base of the session's cold-solve
            /// streams (see `rl_core::tracking::cold_seed`).
            seed: u64,
        },
        /// Feeds observation deltas through the session's tracker, in
        /// order; answered by [`Response::TicksPushed`].
        PushTicks {
            /// Session token from [`Response::StreamOpened`].
            session: u64,
            /// Observations, consumed in sequence.
            observations: Vec<WireObservation>,
        },
        /// Reads the session's latest solution; answered by
        /// [`Response::Solution`].
        ReadSolution {
            /// Session token.
            session: u64,
            /// `None` for the full frame, or node ids for a per-node
            /// partial projection (byte-identical to slicing the full
            /// frame).
            nodes: Option<Vec<u64>>,
        },
        /// Tears the session down; answered by
        /// [`Response::StreamClosed`].
        CloseStream {
            /// Session token.
            session: u64,
        },
    }

    /// A session-scoped server-to-client message.
    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    pub enum Response {
        /// The session exists; `session` is the capability for every
        /// later request.
        StreamOpened {
            /// Session token (fingerprint-derived, see the server docs).
            session: u64,
            /// The session's node-universe size; every pushed
            /// observation must declare exactly this universe.
            universe: u64,
        },
        /// Observations were consumed.
        TicksPushed(PushReply),
        /// The latest solution (full or projected).
        Solution(SolutionReply),
        /// The session is gone; its token is now unknown.
        StreamClosed {
            /// Echo of the closed session's token.
            session: u64,
            /// Observations the session consumed over its lifetime.
            ticks: u64,
        },
    }

    /// What network a session's observations describe. Part of the
    /// session's identity (folded into the token fingerprint).
    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    pub enum StreamSource {
        /// A named mobility preset (see `rl_deploy::mobility::NAMES`);
        /// both sides agree bit-for-bit on what it means.
        Preset {
            /// Mobility preset name, e.g. `"town-mobile"`.
            name: String,
        },
        /// A static deployment preset set in motion by a
        /// client-declared recipe.
        Custom {
            /// Static deployment preset name (see
            /// `rl_deploy::presets::NAMES`), e.g. `"town"`.
            deployment: String,
            /// Motion model the client will simulate.
            motion: MotionModel,
            /// Churn model the client will simulate.
            churn: ChurnModel,
        },
    }

    /// Wire-side tracker configuration. Maps onto
    /// [`TrackerConfig`](rl_core::tracking::TrackerConfig) server-side.
    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    pub struct TrackerSpec {
        /// Configuration preset: `"default"`
        /// ([`TrackerConfig::new`](rl_core::tracking::TrackerConfig::new))
        /// or `"metro"`
        /// ([`TrackerConfig::metro`](rl_core::tracking::TrackerConfig::metro)).
        pub preset: String,
        /// Overrides the warm path's Gauss–Newton step budget per tick.
        pub steps_per_tick: Option<u64>,
        /// Overrides the cold-restart churn threshold.
        pub churn_restart_fraction: Option<f64>,
    }

    impl Default for TrackerSpec {
        fn default() -> Self {
            TrackerSpec {
                preset: "default".to_string(),
                steps_per_tick: None,
                churn_restart_fraction: None,
            }
        }
    }

    /// One tick's observation delta in wire form: the JSON-friendly
    /// mirror of [`TickObservation`]. Conversion is lossless —
    /// [`WireObservation::from_observation`] then
    /// [`WireObservation::to_observation`] reproduces the original
    /// exactly (the measurement set iterates sorted, so reconstruction
    /// is order-stable).
    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    pub struct WireObservation {
        /// Observation index in the stream, starting at 0.
        pub tick: u64,
        /// Node-universe size; must match the session's.
        pub universe: u64,
        /// Weighted measured edges as `(a, b, distance_m, weight)` with
        /// `a < b`.
        pub edges: Vec<(u64, u64, f64, f64)>,
        /// Surveyed nodes as `(id, x, y)`.
        pub anchors: Vec<(u64, f64, f64)>,
        /// Every active slot this tick, ascending and unique.
        pub active: Vec<u64>,
        /// Slots that became active this tick.
        pub joined: Vec<u64>,
        /// Slots that became inactive this tick.
        pub left: Vec<u64>,
        /// Ground-truth positions for the whole universe, when the
        /// source is a simulation (scaffolding for protocol-driven cold
        /// solvers and evaluation, never an input to estimates).
        pub truth: Option<Vec<(f64, f64)>>,
    }

    impl WireObservation {
        /// Encodes a [`TickObservation`] for the wire.
        pub fn from_observation(obs: &TickObservation) -> WireObservation {
            WireObservation {
                tick: obs.tick,
                universe: obs.measurements.node_count() as u64,
                edges: obs
                    .measurements
                    .iter_weighted()
                    .map(|(a, b, d, w)| (a.index() as u64, b.index() as u64, d, w))
                    .collect(),
                anchors: obs
                    .anchors
                    .iter()
                    .map(|a| (a.id.index() as u64, a.position.x, a.position.y))
                    .collect(),
                active: obs.active.iter().map(|id| id.index() as u64).collect(),
                joined: obs.joined.iter().map(|id| id.index() as u64).collect(),
                left: obs.left.iter().map(|id| id.index() as u64).collect(),
                truth: obs
                    .truth
                    .as_ref()
                    .map(|t| t.iter().map(|p| (p.x, p.y)).collect()),
            }
        }

        /// Decodes back into a solver-ready [`TickObservation`],
        /// validating everything that could make the server allocate or
        /// index out of bounds. Semantic validation (duplicate actives,
        /// connectivity) stays with the tracker, which already types
        /// those errors.
        ///
        /// # Errors
        ///
        /// [`ErrorCode::InvalidObservation`] with a description of the
        /// first violation.
        pub fn to_observation(&self) -> Result<TickObservation, WireError> {
            let invalid = |what: String| WireError::new(ErrorCode::InvalidObservation, what);
            if self.universe > MAX_UNIVERSE {
                return Err(invalid(format!(
                    "universe of {} exceeds the {MAX_UNIVERSE}-slot limit",
                    self.universe
                )));
            }
            let n = self.universe as usize;
            let slot = |id: u64, what: &str| -> Result<NodeId, WireError> {
                if id < self.universe {
                    Ok(NodeId(id as usize))
                } else {
                    Err(invalid(format!(
                        "{what} id {id} outside the {n}-slot universe"
                    )))
                }
            };
            let mut measurements = MeasurementSet::new(n);
            for &(a, b, d, w) in &self.edges {
                let (a, b) = (slot(a, "edge")?, slot(b, "edge")?);
                if a == b {
                    return Err(invalid(format!("self-edge on node {}", a.index())));
                }
                if !d.is_finite() || !w.is_finite() {
                    return Err(invalid(format!(
                        "non-finite measurement on edge ({}, {})",
                        a.index(),
                        b.index()
                    )));
                }
                measurements.insert_weighted(a, b, d, w);
            }
            let mut anchors = Vec::with_capacity(self.anchors.len());
            for &(id, x, y) in &self.anchors {
                if !x.is_finite() || !y.is_finite() {
                    return Err(invalid(format!("non-finite anchor position for node {id}")));
                }
                anchors.push(Anchor::new(slot(id, "anchor")?, Point2::new(x, y)));
            }
            let ids = |list: &[u64], what: &str| -> Result<Vec<NodeId>, WireError> {
                list.iter().map(|&id| slot(id, what)).collect()
            };
            let truth = match &self.truth {
                None => None,
                Some(points) => {
                    if points.len() != n {
                        return Err(invalid(format!(
                            "truth covers {} of {n} slots",
                            points.len()
                        )));
                    }
                    let mut truth = Vec::with_capacity(n);
                    for &(x, y) in points {
                        if !x.is_finite() || !y.is_finite() {
                            return Err(invalid("non-finite truth position".to_string()));
                        }
                        truth.push(Point2::new(x, y));
                    }
                    Some(truth)
                }
            };
            Ok(TickObservation {
                tick: self.tick,
                measurements,
                anchors,
                active: ids(&self.active, "active")?,
                joined: ids(&self.joined, "joined")?,
                left: ids(&self.left, "left")?,
                truth,
            })
        }
    }

    /// The deterministic outcome of a [`Request::PushTicks`].
    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    pub struct PushReply {
        /// Echo of the session token.
        pub session: u64,
        /// Observations this push fed through the tracker successfully.
        pub accepted: u64,
        /// Observations the tracker has consumed over its lifetime
        /// (errors included — the cold-seed contract counts them).
        pub ticks: u64,
        /// Lifetime warm (incremental) updates.
        pub warm_updates: u64,
        /// Lifetime cold (from-scratch) solves.
        pub cold_solves: u64,
        /// [`solution_fingerprint`](rl_core::tracking::solution_fingerprint)
        /// of the tracker's latest solution after this push.
        pub fingerprint: u64,
    }

    /// The deterministic payload of a [`Request::ReadSolution`].
    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    pub struct SolutionReply {
        /// Echo of the session token.
        pub session: u64,
        /// Observations consumed when this solution was produced.
        pub ticks: u64,
        /// `"absolute"` or `"relative"`.
        pub frame: String,
        /// Echo of the projection (`None` = full frame).
        pub nodes: Option<Vec<u64>>,
        /// Estimated positions: the full universe in id order, or
        /// aligned with `nodes` when projected.
        pub positions: Vec<Option<(f64, f64)>>,
        /// Nodes with an estimate, out of `positions.len()`.
        pub localized: u64,
        /// [`solution_fingerprint`](rl_core::tracking::solution_fingerprint)
        /// of the **full** latest solution (identical whether or not the
        /// read was projected).
        pub fingerprint: u64,
    }
}

/// The deterministic payload of a completed full-frame localize request.
///
/// Coordinates are finite `f64`s (the server refuses to serialize
/// non-finite positions — see [`ErrorCode::SolveFailed`]), so the JSON
/// encoding round-trips every coordinate bit-for-bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocalizeReply {
    /// Echo of the requested deployment preset.
    pub deployment: String,
    /// Echo of the requested solver.
    pub solver: String,
    /// Echo of the request seed.
    pub seed: u64,
    /// `"absolute"` or `"relative"` — the coordinate frame of
    /// `positions` (see `rl_core::problem::Frame`).
    pub frame: String,
    /// Estimated position per node id; `None` for unlocalized nodes.
    pub positions: Vec<Option<(f64, f64)>>,
    /// Solver work counter (descent iterations, protocol messages, …).
    pub iterations: u64,
    /// Final objective value, when the solver reports one.
    pub residual: Option<f64>,
    /// Whether the solver reached its convergence criterion, when it has
    /// one.
    pub converged: Option<bool>,
    /// Server-side mean localization error against the preset's ground
    /// truth, in meters (anchors excluded).
    pub mean_error_m: Option<f64>,
    /// Nodes with a position estimate, out of `positions.len()`.
    pub localized: u64,
}

/// Server counters reported by [`batch::Response::Status`].
///
/// Counters are cumulative since server start and monotone unless
/// marked as gauges; the cache/batching/fairness tests read them as
/// deltas around a request burst. The session-related fields are
/// documented in the [module docs](self) under "Session counters".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerStats {
    /// The server's [`PROTOCOL_VERSION`].
    pub protocol: u32,
    /// Solver worker-pool size.
    pub workers: u64,
    /// Names of the serveable deployment presets.
    pub deployments: Vec<String>,
    /// Total localize requests accepted (cache hits and coalesced
    /// requests included).
    pub requests: u64,
    /// Localize requests answered straight from the solution cache.
    pub cache_hits: u64,
    /// Localize requests that joined an already-in-flight identical
    /// solve instead of enqueueing their own.
    pub coalesced: u64,
    /// Solves picked up by a worker.
    pub solves_started: u64,
    /// Solves completed by a worker (each may have fanned out to many
    /// coalesced waiters).
    pub solves: u64,
    /// Typed error responses sent.
    pub errors: u64,
    /// Entries currently in the solution cache.
    pub cache_entries: u64,
    /// Solution-cache capacity.
    pub cache_capacity: u64,
    /// Jobs currently waiting across both queues (a gauge; the sum of
    /// `batch_queued` and `stream_queued`).
    pub queued: u64,
    /// Configured per-class job-queue depth bound; `0` means unbounded.
    pub queue_depth: u64,
    /// Requests rejected with [`ErrorCode::Overloaded`] (full queue,
    /// full session mailbox, or session capacity).
    pub overloaded: u64,
    /// Streaming sessions currently alive (a gauge).
    pub sessions_open: u64,
    /// Sessions reaped by the idle TTL (cumulative).
    pub sessions_evicted: u64,
    /// Configured open-session capacity.
    pub session_capacity: u64,
    /// Observations accepted by session trackers (cumulative).
    pub ticks_served: u64,
    /// Batch jobs waiting in their queue (a gauge).
    pub batch_queued: u64,
    /// Streaming tick jobs waiting in their queue (a gauge).
    pub stream_queued: u64,
}

/// A typed error response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireError {
    /// Machine-readable error class.
    pub code: ErrorCode,
    /// Human-readable context.
    pub message: String,
}

impl WireError {
    /// Builds an error from a code and message.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        WireError {
            code,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}: {}", self.code, self.message)
    }
}

impl std::error::Error for WireError {}

/// Machine-readable error classes. All are terminal for the *request*;
/// only [`ErrorCode::FrameTooLarge`] is terminal for the *connection*
/// (the byte stream is unsynchronized past an oversized declaration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorCode {
    /// The frame's payload was not valid JSON for a known [`Request`].
    MalformedFrame,
    /// The frame's declared length exceeded the receiver's maximum.
    FrameTooLarge,
    /// [`Request::Hello`] carried an unsupported protocol version, or a
    /// v1-negotiated connection sent a v2-only request (a stream request
    /// or a `nodes` projection).
    UnsupportedProtocol,
    /// The request named a deployment or mobility source outside the
    /// preset registries.
    UnknownDeployment,
    /// [`batch::Request::Localize`] named a solver outside the registry,
    /// or `OpenStream` named an unknown tracker preset.
    UnknownSolver,
    /// The solver returned an error, produced positions that cannot be
    /// represented on the wire (non-finite coordinates), or a solution
    /// was read from a session before its first successful tick.
    SolveFailed,
    /// The server is shutting down and no longer accepts work.
    ShuttingDown,
    /// A queue or quota is at its bound: the job queue, the per-session
    /// mailbox, or the open-session capacity. The request was rejected
    /// without being accepted; retry after a backoff — the connection
    /// stays open.
    Overloaded,
    /// A stream request named a session token the server does not know
    /// (never opened, or already closed). Additive in v2.
    UnknownSession,
    /// A stream request named a session the idle TTL reaped. The state
    /// is gone — reopen and replay to continue. Additive in v2.
    SessionEvicted,
    /// A projection named a node id outside the deployment's universe.
    /// Additive in v2.
    UnknownNode,
    /// A pushed observation failed wire-level validation (universe
    /// mismatch, out-of-range ids, non-finite numbers). Additive in v2.
    InvalidObservation,
}

/// Frame-level read failures (transport, not application, errors).
#[derive(Debug)]
pub enum FrameError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The declared payload length exceeds the configured maximum.
    TooLarge {
        /// Declared payload length.
        declared: usize,
        /// The receiver's maximum.
        max: usize,
    },
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
            FrameError::TooLarge { declared, max } => {
                write!(
                    f,
                    "frame of {declared} bytes exceeds the {max}-byte maximum"
                )
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Writes one frame: 4-byte big-endian length prefix, then the payload.
///
/// # Errors
///
/// [`FrameError::TooLarge`] when the payload exceeds `max` (nothing is
/// written), or the underlying I/O error.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8], max: usize) -> Result<(), FrameError> {
    if payload.len() > max {
        return Err(FrameError::TooLarge {
            declared: payload.len(),
            max,
        });
    }
    // One write for prefix + payload: splitting them into two small
    // segments interacts with Nagle + delayed ACK into ~40 ms stalls.
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    frame.extend_from_slice(payload);
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame with blocking I/O. Returns `Ok(None)` on a clean EOF
/// *before* the first prefix byte (the peer closed between frames).
///
/// # Errors
///
/// [`FrameError::TooLarge`] when the declared length exceeds `max` (the
/// stream is left unsynchronized — close it), or the underlying I/O
/// error (including `UnexpectedEof` for a connection dropped
/// mid-frame).
pub fn read_frame<R: Read>(r: &mut R, max: usize) -> Result<Option<Vec<u8>>, FrameError> {
    let mut prefix = [0u8; 4];
    let mut filled = 0;
    while filled < prefix.len() {
        let n = r.read(&mut prefix[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-prefix",
            )
            .into());
        }
        filled += n;
    }
    let declared = u32::from_be_bytes(prefix) as usize;
    if declared > max {
        return Err(FrameError::TooLarge { declared, max });
    }
    let mut payload = vec![0u8; declared];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Serializes a message and writes it as one frame.
///
/// # Errors
///
/// See [`write_frame`]; serialization itself cannot fail for the
/// protocol types.
pub fn send<W: Write, T: Serialize>(w: &mut W, message: &T, max: usize) -> Result<(), FrameError> {
    let json = serde_json::to_string(message)
        .expect("protocol types serialize infallibly through the shim");
    write_frame(w, json.as_bytes(), max)
}

/// Decodes a frame payload into a message, mapping JSON/shape failures
/// to a human-readable string (the caller turns it into
/// [`ErrorCode::MalformedFrame`]).
///
/// # Errors
///
/// A description of the decode failure: invalid UTF-8, invalid JSON, or
/// a JSON value of the wrong shape.
pub fn decode<T: Deserialize>(payload: &[u8]) -> Result<T, String> {
    let text = std::str::from_utf8(payload).map_err(|e| format!("payload is not UTF-8: {e}"))?;
    serde_json::from_str(text).map_err(|e| format!("payload is not a valid message: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello", DEFAULT_MAX_FRAME).unwrap();
        write_frame(&mut buf, b"", DEFAULT_MAX_FRAME).unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(
            read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap().as_deref(),
            Some(&b"hello"[..])
        );
        assert_eq!(
            read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap().as_deref(),
            Some(&b""[..])
        );
        // Clean EOF between frames reads as None.
        assert!(read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap().is_none());
    }

    #[test]
    fn oversized_frames_are_rejected_on_both_sides() {
        let mut buf = Vec::new();
        assert!(matches!(
            write_frame(&mut buf, &[0u8; 32], 16),
            Err(FrameError::TooLarge {
                declared: 32,
                max: 16
            })
        ));
        assert!(buf.is_empty(), "nothing written for an oversized frame");

        let mut wire = Vec::new();
        wire.extend_from_slice(&1024u32.to_be_bytes());
        wire.extend_from_slice(&[0u8; 1024]);
        assert!(matches!(
            read_frame(&mut Cursor::new(wire), 16),
            Err(FrameError::TooLarge {
                declared: 1024,
                max: 16
            })
        ));
    }

    #[test]
    fn truncated_frames_error_not_hang() {
        // Mid-prefix cut.
        let mut r = Cursor::new(vec![0u8, 0]);
        assert!(matches!(
            read_frame(&mut r, DEFAULT_MAX_FRAME),
            Err(FrameError::Io(e)) if e.kind() == io::ErrorKind::UnexpectedEof
        ));
        // Mid-payload cut.
        let mut wire = Vec::new();
        wire.extend_from_slice(&8u32.to_be_bytes());
        wire.extend_from_slice(b"abc");
        assert!(matches!(
            read_frame(&mut Cursor::new(wire), DEFAULT_MAX_FRAME),
            Err(FrameError::Io(e)) if e.kind() == io::ErrorKind::UnexpectedEof
        ));
    }

    fn sample_reply() -> LocalizeReply {
        LocalizeReply {
            deployment: "town".into(),
            solver: "lss".into(),
            seed: 7,
            frame: "relative".into(),
            positions: vec![Some((1.25, -0.5)), None],
            iterations: 42,
            residual: Some(0.125),
            converged: Some(true),
            mean_error_m: Some(0.75),
            localized: 1,
        }
    }

    #[test]
    fn requests_and_responses_round_trip_through_json() {
        let requests = [
            Request::Hello {
                protocol: PROTOCOL_VERSION,
            },
            Request::localize("town", "lss", 7),
            Request::Batch(batch::Request::Localize {
                deployment: "town".into(),
                solver: "lss".into(),
                seed: 7,
                nodes: Some(vec![0, 3, 5]),
            }),
            Request::Batch(batch::Request::Status),
            Request::Batch(batch::Request::Shutdown),
            Request::Stream(stream::Request::OpenStream {
                source: stream::StreamSource::Preset {
                    name: "town-mobile".into(),
                },
                tracker: stream::TrackerSpec::default(),
                seed: 11,
            }),
            Request::Stream(stream::Request::OpenStream {
                source: stream::StreamSource::Custom {
                    deployment: "town".into(),
                    motion: rl_deploy::mobility::MotionModel::RandomWalk { step_m: 0.5 },
                    churn: rl_deploy::mobility::ChurnModel::light(),
                },
                tracker: stream::TrackerSpec {
                    preset: "metro".into(),
                    steps_per_tick: Some(6),
                    churn_restart_fraction: None,
                },
                seed: 11,
            }),
            Request::Stream(stream::Request::PushTicks {
                session: 99,
                observations: vec![],
            }),
            Request::Stream(stream::Request::ReadSolution {
                session: 99,
                nodes: Some(vec![1, 2]),
            }),
            Request::Stream(stream::Request::CloseStream { session: 99 }),
        ];
        for req in &requests {
            let json = serde_json::to_string(req).unwrap();
            assert_eq!(&serde_json::from_str::<Request>(&json).unwrap(), req);
        }
        let responses = [
            Response::Hello {
                protocol: 2,
                server: "rl-serve/test".into(),
            },
            Response::Batch(batch::Response::Localized(sample_reply())),
            Response::Batch(batch::Response::Projected(
                batch::Projection::slice(&sample_reply(), &[1, 0]).unwrap(),
            )),
            Response::Batch(batch::Response::ShuttingDown),
            Response::Stream(stream::Response::StreamOpened {
                session: 5,
                universe: 59,
            }),
            Response::Stream(stream::Response::TicksPushed(stream::PushReply {
                session: 5,
                accepted: 3,
                ticks: 9,
                warm_updates: 8,
                cold_solves: 1,
                fingerprint: 0xDEAD,
            })),
            Response::Stream(stream::Response::Solution(stream::SolutionReply {
                session: 5,
                ticks: 9,
                frame: "absolute".into(),
                nodes: None,
                positions: vec![Some((1.0, 2.0)), None],
                localized: 1,
                fingerprint: 0xDEAD,
            })),
            Response::Stream(stream::Response::StreamClosed {
                session: 5,
                ticks: 9,
            }),
            Response::Error(WireError::new(ErrorCode::UnknownSession, "no such session")),
        ];
        for resp in &responses {
            let json = serde_json::to_string(resp).unwrap();
            assert_eq!(&serde_json::from_str::<Response>(&json).unwrap(), resp);
        }
    }

    /// The v1 compatibility contract, pinned at the byte level: v1
    /// request literals decode, and v1-vocabulary responses encode to
    /// exactly the frames a v1 server produced (derived-enum encoding:
    /// unit variant = string, tuple variant = single-key map to a list,
    /// struct variant/field order = declaration order).
    #[test]
    fn v1_frames_stay_decodable_and_byte_identical() {
        // v1 requests (no `nodes` field existed) decode into the batch
        // namespace with `nodes: None`.
        let localize: Request =
            serde_json::from_str(r#"{"Localize":{"deployment":"town","solver":"lss","seed":7}}"#)
                .unwrap();
        assert_eq!(localize, Request::localize("town", "lss", 7));
        assert_eq!(
            serde_json::from_str::<Request>(r#""Status""#).unwrap(),
            Request::Batch(batch::Request::Status)
        );
        assert_eq!(
            serde_json::from_str::<Request>(r#""Shutdown""#).unwrap(),
            Request::Batch(batch::Request::Shutdown)
        );
        assert_eq!(
            serde_json::from_str::<Request>(r#"{"Hello":{"protocol":1}}"#).unwrap(),
            Request::Hello { protocol: 1 }
        );

        // v1 response vocabulary encodes byte-identically through the
        // v2 envelope.
        let reply = LocalizeReply {
            deployment: "d".into(),
            solver: "s".into(),
            seed: 1,
            frame: "absolute".into(),
            positions: vec![Some((1.5, -2.0)), None],
            iterations: 3,
            residual: None,
            converged: Some(false),
            mean_error_m: None,
            localized: 1,
        };
        assert_eq!(
            serde_json::to_string(&Response::Batch(batch::Response::Localized(reply))).unwrap(),
            concat!(
                r#"{"Localized":[{"deployment":"d","solver":"s","seed":1,"#,
                r#""frame":"absolute","positions":[[1.5,-2.0],null],"#,
                r#""iterations":3,"residual":null,"converged":false,"#,
                r#""mean_error_m":null,"localized":1}]}"#
            )
        );
        assert_eq!(
            serde_json::to_string(&Response::Batch(batch::Response::ShuttingDown)).unwrap(),
            r#""ShuttingDown""#
        );
        assert_eq!(
            serde_json::to_string(&Response::Hello {
                protocol: 1,
                server: "rl-serve/x".into(),
            })
            .unwrap(),
            r#"{"Hello":{"protocol":1,"server":"rl-serve/x"}}"#
        );
        assert_eq!(
            serde_json::to_string(&Response::Error(WireError::new(
                ErrorCode::Overloaded,
                "busy"
            )))
            .unwrap(),
            r#"{"Error":[{"code":"Overloaded","message":"busy"}]}"#
        );
    }

    #[test]
    fn projections_slice_full_replies_exactly() {
        let reply = sample_reply();
        let p = batch::Projection::slice(&reply, &[1, 0, 0]).unwrap();
        assert_eq!(p.nodes, vec![1, 0, 0]);
        assert_eq!(
            p.positions,
            vec![None, Some((1.25, -0.5)), Some((1.25, -0.5))]
        );
        assert_eq!(p.localized, 2);
        assert_eq!((p.frame.as_str(), p.seed), ("relative", 7));
        // Out-of-universe ids are typed errors.
        assert_eq!(
            batch::Projection::slice(&reply, &[2]).unwrap_err().code,
            ErrorCode::UnknownNode
        );
        // The empty projection is legal (a liveness probe).
        assert_eq!(batch::Projection::slice(&reply, &[]).unwrap().localized, 0);
    }

    #[test]
    fn wire_observations_round_trip_losslessly() {
        let trace = rl_deploy::mobility::preset("town-mobile")
            .unwrap()
            .with_ticks(3)
            .trace(5);
        for obs in trace.iter() {
            let wire = stream::WireObservation::from_observation(obs);
            let json = serde_json::to_string(&wire).unwrap();
            let back: stream::WireObservation = serde_json::from_str(&json).unwrap();
            assert_eq!(back, wire);
            assert_eq!(&back.to_observation().unwrap(), obs);
        }
    }

    #[test]
    fn wire_observations_validate_before_allocating() {
        let ok = stream::WireObservation {
            tick: 0,
            universe: 4,
            edges: vec![(0, 1, 9.0, 1.0)],
            anchors: vec![(0, 0.0, 0.0)],
            active: vec![0, 1],
            joined: vec![],
            left: vec![],
            truth: None,
        };
        assert!(ok.to_observation().is_ok());
        let cases: Vec<(&str, stream::WireObservation)> = vec![
            (
                "oversized universe",
                stream::WireObservation {
                    universe: stream::MAX_UNIVERSE + 1,
                    ..ok.clone()
                },
            ),
            (
                "edge outside universe",
                stream::WireObservation {
                    edges: vec![(0, 4, 9.0, 1.0)],
                    ..ok.clone()
                },
            ),
            (
                "self edge",
                stream::WireObservation {
                    edges: vec![(1, 1, 9.0, 1.0)],
                    ..ok.clone()
                },
            ),
            (
                "non-finite range",
                stream::WireObservation {
                    edges: vec![(0, 1, f64::NAN, 1.0)],
                    ..ok.clone()
                },
            ),
            (
                "anchor outside universe",
                stream::WireObservation {
                    anchors: vec![(9, 0.0, 0.0)],
                    ..ok.clone()
                },
            ),
            (
                "active outside universe",
                stream::WireObservation {
                    active: vec![0, 7],
                    ..ok.clone()
                },
            ),
            (
                "short truth",
                stream::WireObservation {
                    truth: Some(vec![(0.0, 0.0)]),
                    ..ok.clone()
                },
            ),
        ];
        for (what, bad) in cases {
            assert_eq!(
                bad.to_observation().unwrap_err().code,
                ErrorCode::InvalidObservation,
                "{what} must be rejected"
            );
        }
    }

    #[test]
    fn reply_coordinates_round_trip_bit_exactly() {
        // The cache contract leans on exact f64 text round-trips.
        let coords = [
            (0.1, 1.0 / 3.0),
            (core::f64::consts::PI, -0.0),
            (5e-324, 1e300),
        ];
        let reply = LocalizeReply {
            deployment: "d".into(),
            solver: "s".into(),
            seed: 1,
            frame: "absolute".into(),
            positions: coords.iter().map(|&p| Some(p)).collect(),
            iterations: 0,
            residual: None,
            converged: None,
            mean_error_m: None,
            localized: coords.len() as u64,
        };
        let json = serde_json::to_string(&reply).unwrap();
        let back: LocalizeReply = serde_json::from_str(&json).unwrap();
        for (a, b) in reply.positions.iter().zip(&back.positions) {
            let (a, b) = (a.unwrap(), b.unwrap());
            assert_eq!(a.0.to_bits(), b.0.to_bits());
            assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
    }

    #[test]
    fn decode_reports_malformed_payloads() {
        assert!(decode::<Request>(b"not json").is_err());
        assert!(decode::<Request>(&[0xFF, 0xFE]).is_err());
        assert!(decode::<Request>(br#"{"NoSuchVariant":{}}"#).is_err());
        assert!(decode::<Response>(br#"{"Error":[]}"#).is_err());
        assert!(decode::<Response>(br#"{"Error":[{},{}]}"#).is_err());
    }
}
