//! The wire protocol: length-prefixed `serde_json` frames over TCP.
//!
//! # Frame format
//!
//! Every message — in either direction — is one *frame*:
//!
//! ```text
//! +----------------+---------------------------+
//! | length: u32 BE | payload: `length` bytes   |
//! +----------------+---------------------------+
//! ```
//!
//! The payload is the UTF-8 JSON encoding (via the vendored `serde_json`
//! shim) of one [`Request`] or [`Response`]. The length prefix counts
//! payload bytes only. Frames larger than the receiver's configured
//! maximum ([`DEFAULT_MAX_FRAME`] by default) are rejected with
//! [`ErrorCode::FrameTooLarge`]; because an oversized declaration leaves
//! the byte stream unsynchronized, the connection is closed after the
//! error response. A frame whose payload is not valid JSON for the
//! expected type is rejected with [`ErrorCode::MalformedFrame`] — the
//! frame boundary itself was still intact, so the connection stays open.
//!
//! # Conversation shape
//!
//! The protocol is strict request/response: a client sends one frame and
//! reads one frame back; there is no pipelining and the server never
//! pushes unsolicited frames. A connection serves any number of
//! requests.
//!
//! # Versioning
//!
//! Clients should open with [`Request::Hello`] carrying
//! [`PROTOCOL_VERSION`]; the server answers [`Response::Hello`] with its
//! own version, or [`ErrorCode::UnsupportedProtocol`] on a mismatch.
//! The version is bumped whenever an existing field or variant changes
//! meaning; purely additive variants keep the version (unknown variants
//! already fail closed as [`ErrorCode::MalformedFrame`]).
//!
//! # Determinism
//!
//! [`LocalizeReply`] deliberately carries only *deterministic* solve
//! content — positions, iteration counts, convergence, the server-side
//! evaluation — and no wall-clock or delivery metadata (whether the
//! response was served from cache, coalesced into a shared solve, or
//! solved cold is observable only through [`Request::Status`] counters).
//! This is what makes the cache contract testable at the byte level: the
//! response frame for a cached solve is **bit-identical** to the frame
//! the cold solve produced, because the vendored `serde_json` shim
//! round-trips every finite `f64` exactly.

use std::io::{self, Read, Write};

use serde::{Deserialize, Serialize};

/// Current protocol version. See the module docs for the bump policy.
pub const PROTOCOL_VERSION: u32 = 1;

/// Default maximum frame size (1 MiB): comfortably above a metro-1000
/// [`LocalizeReply`] (~50 KiB), far below anything a hostile or confused
/// peer could use to balloon server memory.
pub const DEFAULT_MAX_FRAME: usize = 1 << 20;

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Version handshake; answered by [`Response::Hello`].
    Hello {
        /// The client's [`PROTOCOL_VERSION`].
        protocol: u32,
    },
    /// Localize a preset deployment: answered by [`Response::Localized`]
    /// (possibly from cache or a coalesced shared solve) or a typed
    /// error.
    Localize {
        /// Preset deployment name (see `rl_deploy::presets`).
        deployment: String,
        /// Solver registry name, e.g. `"lss"` or `"mds-map"`.
        solver: String,
        /// Measurement-instantiation seed; the same
        /// `(deployment, solver, seed)` triple always yields the same
        /// reply, bit for bit.
        seed: u64,
    },
    /// Server statistics snapshot; answered by [`Response::Status`].
    Status,
    /// Graceful shutdown: the server finishes in-flight solves, answers
    /// [`Response::ShuttingDown`], and stops accepting connections.
    Shutdown,
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Handshake answer.
    Hello {
        /// The server's [`PROTOCOL_VERSION`].
        protocol: u32,
        /// Human-readable server identifier.
        server: String,
    },
    /// A completed localize request.
    Localized(LocalizeReply),
    /// A statistics snapshot.
    Status(ServerStats),
    /// Acknowledges [`Request::Shutdown`]; the connection closes after
    /// this frame.
    ShuttingDown,
    /// A typed failure; the connection stays open unless the error is a
    /// framing-level one ([`ErrorCode::FrameTooLarge`]).
    Error(WireError),
}

/// The deterministic payload of a completed localize request.
///
/// Coordinates are finite `f64`s (the server refuses to serialize
/// non-finite positions — see [`ErrorCode::SolveFailed`]), so the JSON
/// encoding round-trips every coordinate bit-for-bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocalizeReply {
    /// Echo of the requested deployment preset.
    pub deployment: String,
    /// Echo of the requested solver.
    pub solver: String,
    /// Echo of the request seed.
    pub seed: u64,
    /// `"absolute"` or `"relative"` — the coordinate frame of
    /// `positions` (see `rl_core::problem::Frame`).
    pub frame: String,
    /// Estimated position per node id; `None` for unlocalized nodes.
    pub positions: Vec<Option<(f64, f64)>>,
    /// Solver work counter (descent iterations, protocol messages, …).
    pub iterations: u64,
    /// Final objective value, when the solver reports one.
    pub residual: Option<f64>,
    /// Whether the solver reached its convergence criterion, when it has
    /// one.
    pub converged: Option<bool>,
    /// Server-side mean localization error against the preset's ground
    /// truth, in meters (anchors excluded).
    pub mean_error_m: Option<f64>,
    /// Nodes with a position estimate, out of `positions.len()`.
    pub localized: u64,
}

/// Server counters reported by [`Response::Status`].
///
/// Counters are cumulative since server start and monotone; the
/// cache/batching tests read them as deltas around a request burst.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerStats {
    /// The server's [`PROTOCOL_VERSION`].
    pub protocol: u32,
    /// Solver worker-pool size.
    pub workers: u64,
    /// Names of the serveable deployment presets.
    pub deployments: Vec<String>,
    /// Total localize requests accepted (cache hits and coalesced
    /// requests included).
    pub requests: u64,
    /// Localize requests answered straight from the solution cache.
    pub cache_hits: u64,
    /// Localize requests that joined an already-in-flight identical
    /// solve instead of enqueueing their own.
    pub coalesced: u64,
    /// Solves picked up by a worker.
    pub solves_started: u64,
    /// Solves completed by a worker (each may have fanned out to many
    /// coalesced waiters).
    pub solves: u64,
    /// Typed error responses sent.
    pub errors: u64,
    /// Entries currently in the solution cache.
    pub cache_entries: u64,
    /// Solution-cache capacity.
    pub cache_capacity: u64,
    /// Jobs currently waiting in the queue (a gauge, not cumulative).
    pub queued: u64,
    /// Configured job-queue depth bound; `0` means unbounded.
    pub queue_depth: u64,
    /// Localize requests rejected with [`ErrorCode::Overloaded`] because
    /// the queue was full.
    pub overloaded: u64,
}

/// A typed error response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireError {
    /// Machine-readable error class.
    pub code: ErrorCode,
    /// Human-readable context.
    pub message: String,
}

impl WireError {
    /// Builds an error from a code and message.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        WireError {
            code,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}: {}", self.code, self.message)
    }
}

impl std::error::Error for WireError {}

/// Machine-readable error classes. All are terminal for the *request*;
/// only [`ErrorCode::FrameTooLarge`] is terminal for the *connection*
/// (the byte stream is unsynchronized past an oversized declaration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorCode {
    /// The frame's payload was not valid JSON for a known [`Request`].
    MalformedFrame,
    /// The frame's declared length exceeded the receiver's maximum.
    FrameTooLarge,
    /// [`Request::Hello`] carried an incompatible protocol version.
    UnsupportedProtocol,
    /// [`Request::Localize`] named a deployment outside the preset
    /// registry.
    UnknownDeployment,
    /// [`Request::Localize`] named a solver outside the registry.
    UnknownSolver,
    /// The solver returned an error, or produced positions that cannot
    /// be represented on the wire (non-finite coordinates).
    SolveFailed,
    /// The server is shutting down and no longer accepts localize
    /// requests.
    ShuttingDown,
    /// The job queue is at its configured depth bound; the request was
    /// rejected without being enqueued. Retry after a backoff — the
    /// connection stays open. (Additive in-place of a version bump, per
    /// the module-docs policy.)
    Overloaded,
}

/// Frame-level read failures (transport, not application, errors).
#[derive(Debug)]
pub enum FrameError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The declared payload length exceeds the configured maximum.
    TooLarge {
        /// Declared payload length.
        declared: usize,
        /// The receiver's maximum.
        max: usize,
    },
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
            FrameError::TooLarge { declared, max } => {
                write!(
                    f,
                    "frame of {declared} bytes exceeds the {max}-byte maximum"
                )
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Writes one frame: 4-byte big-endian length prefix, then the payload.
///
/// # Errors
///
/// [`FrameError::TooLarge`] when the payload exceeds `max` (nothing is
/// written), or the underlying I/O error.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8], max: usize) -> Result<(), FrameError> {
    if payload.len() > max {
        return Err(FrameError::TooLarge {
            declared: payload.len(),
            max,
        });
    }
    // One write for prefix + payload: splitting them into two small
    // segments interacts with Nagle + delayed ACK into ~40 ms stalls.
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    frame.extend_from_slice(payload);
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame with blocking I/O. Returns `Ok(None)` on a clean EOF
/// *before* the first prefix byte (the peer closed between frames).
///
/// # Errors
///
/// [`FrameError::TooLarge`] when the declared length exceeds `max` (the
/// stream is left unsynchronized — close it), or the underlying I/O
/// error (including `UnexpectedEof` for a connection dropped
/// mid-frame).
pub fn read_frame<R: Read>(r: &mut R, max: usize) -> Result<Option<Vec<u8>>, FrameError> {
    let mut prefix = [0u8; 4];
    let mut filled = 0;
    while filled < prefix.len() {
        let n = r.read(&mut prefix[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-prefix",
            )
            .into());
        }
        filled += n;
    }
    let declared = u32::from_be_bytes(prefix) as usize;
    if declared > max {
        return Err(FrameError::TooLarge { declared, max });
    }
    let mut payload = vec![0u8; declared];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Serializes a message and writes it as one frame.
///
/// # Errors
///
/// See [`write_frame`]; serialization itself cannot fail for the
/// protocol types.
pub fn send<W: Write, T: Serialize>(w: &mut W, message: &T, max: usize) -> Result<(), FrameError> {
    let json = serde_json::to_string(message)
        .expect("protocol types serialize infallibly through the shim");
    write_frame(w, json.as_bytes(), max)
}

/// Decodes a frame payload into a message, mapping JSON/shape failures
/// to a human-readable string (the caller turns it into
/// [`ErrorCode::MalformedFrame`]).
///
/// # Errors
///
/// A description of the decode failure: invalid UTF-8, invalid JSON, or
/// a JSON value of the wrong shape.
pub fn decode<T: Deserialize>(payload: &[u8]) -> Result<T, String> {
    let text = std::str::from_utf8(payload).map_err(|e| format!("payload is not UTF-8: {e}"))?;
    serde_json::from_str(text).map_err(|e| format!("payload is not a valid message: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello", DEFAULT_MAX_FRAME).unwrap();
        write_frame(&mut buf, b"", DEFAULT_MAX_FRAME).unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(
            read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap().as_deref(),
            Some(&b"hello"[..])
        );
        assert_eq!(
            read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap().as_deref(),
            Some(&b""[..])
        );
        // Clean EOF between frames reads as None.
        assert!(read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap().is_none());
    }

    #[test]
    fn oversized_frames_are_rejected_on_both_sides() {
        let mut buf = Vec::new();
        assert!(matches!(
            write_frame(&mut buf, &[0u8; 32], 16),
            Err(FrameError::TooLarge {
                declared: 32,
                max: 16
            })
        ));
        assert!(buf.is_empty(), "nothing written for an oversized frame");

        let mut wire = Vec::new();
        wire.extend_from_slice(&1024u32.to_be_bytes());
        wire.extend_from_slice(&[0u8; 1024]);
        assert!(matches!(
            read_frame(&mut Cursor::new(wire), 16),
            Err(FrameError::TooLarge {
                declared: 1024,
                max: 16
            })
        ));
    }

    #[test]
    fn truncated_frames_error_not_hang() {
        // Mid-prefix cut.
        let mut r = Cursor::new(vec![0u8, 0]);
        assert!(matches!(
            read_frame(&mut r, DEFAULT_MAX_FRAME),
            Err(FrameError::Io(e)) if e.kind() == io::ErrorKind::UnexpectedEof
        ));
        // Mid-payload cut.
        let mut wire = Vec::new();
        wire.extend_from_slice(&8u32.to_be_bytes());
        wire.extend_from_slice(b"abc");
        assert!(matches!(
            read_frame(&mut Cursor::new(wire), DEFAULT_MAX_FRAME),
            Err(FrameError::Io(e)) if e.kind() == io::ErrorKind::UnexpectedEof
        ));
    }

    #[test]
    fn requests_and_responses_round_trip_through_json() {
        let requests = [
            Request::Hello {
                protocol: PROTOCOL_VERSION,
            },
            Request::Localize {
                deployment: "town".into(),
                solver: "lss".into(),
                seed: 7,
            },
            Request::Status,
            Request::Shutdown,
        ];
        for req in &requests {
            let json = serde_json::to_string(req).unwrap();
            assert_eq!(&serde_json::from_str::<Request>(&json).unwrap(), req);
        }
        let reply = Response::Localized(LocalizeReply {
            deployment: "town".into(),
            solver: "lss".into(),
            seed: 7,
            frame: "relative".into(),
            positions: vec![Some((1.25, -0.5)), None],
            iterations: 42,
            residual: Some(0.125),
            converged: Some(true),
            mean_error_m: Some(0.75),
            localized: 1,
        });
        let json = serde_json::to_string(&reply).unwrap();
        assert_eq!(serde_json::from_str::<Response>(&json).unwrap(), reply);
        let err = Response::Error(WireError::new(ErrorCode::UnknownSolver, "no such solver"));
        let json = serde_json::to_string(&err).unwrap();
        assert_eq!(serde_json::from_str::<Response>(&json).unwrap(), err);
    }

    #[test]
    fn reply_coordinates_round_trip_bit_exactly() {
        // The cache contract leans on exact f64 text round-trips.
        let coords = [
            (0.1, 1.0 / 3.0),
            (core::f64::consts::PI, -0.0),
            (5e-324, 1e300),
        ];
        let reply = LocalizeReply {
            deployment: "d".into(),
            solver: "s".into(),
            seed: 1,
            frame: "absolute".into(),
            positions: coords.iter().map(|&p| Some(p)).collect(),
            iterations: 0,
            residual: None,
            converged: None,
            mean_error_m: None,
            localized: coords.len() as u64,
        };
        let json = serde_json::to_string(&reply).unwrap();
        let back: LocalizeReply = serde_json::from_str(&json).unwrap();
        for (a, b) in reply.positions.iter().zip(&back.positions) {
            let (a, b) = (a.unwrap(), b.unwrap());
            assert_eq!(a.0.to_bits(), b.0.to_bits());
            assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
    }

    #[test]
    fn decode_reports_malformed_payloads() {
        assert!(decode::<Request>(b"not json").is_err());
        assert!(decode::<Request>(&[0xFF, 0xFE]).is_err());
        assert!(decode::<Request>(br#"{"NoSuchVariant":{}}"#).is_err());
    }
}
