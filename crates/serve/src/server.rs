//! The long-lived localization server.
//!
//! A [`Server`] owns instantiated deployment state (every
//! [`rl_deploy::presets`] scenario, instantiated into solver-ready
//! [`Problem`]s on demand and memoized) and serves
//! [`Request`]s over TCP with four production behaviors:
//!
//! 1. **Concurrency** — a fixed pool of solver workers (sized by
//!    [`rl_net::pool::resolve_workers`], the same resolution rule as the
//!    campaign and simulator pools) drains the shared job queues, so N
//!    clients are served in parallel while connection threads stay thin
//!    (framing and dispatch only).
//! 2. **Batching** — concurrent requests for the same
//!    `(deployment, solver, seed)` triple coalesce: the first arrival
//!    enqueues one solve, later arrivals register as waiters on it, and
//!    the finished [`LocalizeReply`] fans out to every waiter. The
//!    server never solves the same triple twice concurrently.
//! 3. **Caching** — completed replies land in an LRU cache keyed by a
//!    problem/config fingerprint ([`job_key`], built on
//!    [`rl_math::fingerprint`]); a repeat request is answered from
//!    cache, and because replies carry only deterministic solve content,
//!    the cached response frame is **bit-identical** to the cold one. A
//!    projected request (`Localize` with `nodes`) is served against the
//!    same cache by slicing the full reply
//!    ([`Projection::slice`](crate::protocol::batch::Projection::slice)).
//! 4. **Sessions** — protocol v2's `stream` namespace maps onto
//!    server-owned [`StreamingTracker`] sessions managed by a
//!    [`SessionManager`]: `OpenStream` hands out a capability token,
//!    `PushTicks` feeds observation deltas through the worker pool, and
//!    idle sessions are reaped by a TTL. Tick jobs and batch solves
//!    share the pool through a two-class weighted-fair scheduler
//!    ([`ServeConfig::batch_weight`] / [`ServeConfig::stream_weight`]),
//!    so a firehose of stream ticks cannot starve batch solves or vice
//!    versa.
//!
//! Determinism is inherited from the solving layers: a batch solve seeds
//! its RNG from the request seed alone ([`solve_direct`] is the
//! in-process equivalent, and the integration suite asserts the served
//! reply matches it bitwise), and a session is exactly a
//! [`StreamingTracker`] fed the pushed observations in order — so worker
//! count, scheduling order, and cache state can never change any byte of
//! any reply.
//!
//! # Lifecycle
//!
//! [`Server::bind`] binds the listener and starts the worker pool;
//! [`Server::run`] blocks in the accept loop until a
//! [`batch::Request::Shutdown`] arrives, then drains in-flight jobs,
//! joins the workers and connection handlers, and returns. Connections
//! are read with a short poll tick, so idle timeouts
//! ([`ServeConfig::read_timeout`]) and shutdown both take effect
//! promptly without a signal handler.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use rl_core::baselines::{CentroidLocalizer, DvHopLocalizer};
use rl_core::distributed::{DistributedConfig, DistributedSolver};
use rl_core::lss::{LssConfig, LssSolver};
use rl_core::mds::MdsMapLocalizer;
use rl_core::multilateration::{MultilaterationConfig, MultilaterationSolver};
use rl_core::problem::{Frame, Localizer, Problem};
use rl_core::tracking::{StreamingTracker, TickObservation, TrackerConfig};
use rl_deploy::Scenario;
use rl_deploy::{mobility, presets};
use rl_math::Fnv1a;
use rl_net::RadioModel;

use crate::cache::LruCache;
use crate::protocol::{
    self, batch, stream, ErrorCode, LocalizeReply, Request, Response, ServerStats, WireError,
    MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};
use crate::session::{Clock, SessionManager, SystemClock};

/// Poll tick for connection reads: short enough that idle timeouts and
/// shutdown are prompt, long enough to stay invisible in profiles.
const READ_TICK: Duration = Duration::from_millis(25);

/// The paper's 22 m ranging cutoff, used by the connectivity-based
/// solver registry entries (DV-hop, centroid).
const RANGE_M: f64 = 22.0;

/// Names accepted in [`batch::Request::Localize`]'s `solver` field, in
/// registry order. Each maps to the same configuration the benchmark
/// harness runs at metro scale, so served numbers match the campaign
/// record.
pub const SOLVER_NAMES: &[&str] = &[
    "lss",
    "multilateration",
    "multilateration-progressive",
    "distributed-lss",
    "mds-map",
    "dv-hop",
    "centroid",
];

/// Names accepted in [`stream::TrackerSpec::preset`], in registry order.
pub const TRACKER_PRESET_NAMES: &[&str] = &["default", "metro"];

/// Resolves a solver registry name, or `None` for an unknown name.
pub fn make_solver(name: &str) -> Option<Box<dyn Localizer>> {
    match name {
        "lss" => Some(Box::new(LssSolver::new(LssConfig::metro()))),
        "multilateration" => Some(Box::new(MultilaterationSolver::new(
            MultilaterationConfig::paper(),
        ))),
        "multilateration-progressive" => Some(Box::new(MultilaterationSolver::new(
            MultilaterationConfig::paper().progressive(),
        ))),
        "distributed-lss" => Some(Box::new(DistributedSolver::new(DistributedConfig::metro()))),
        "mds-map" => Some(Box::new(MdsMapLocalizer::new())),
        "dv-hop" => Some(Box::new(DvHopLocalizer::new(RadioModel::ideal(RANGE_M)))),
        "centroid" => Some(Box::new(CentroidLocalizer::new(RANGE_M))),
        _ => None,
    }
}

/// Resolves a [`stream::TrackerSpec`] into a [`TrackerConfig`], or
/// `None` for an unknown preset name. Pure — sessions opened from equal
/// specs always track identically.
pub fn make_tracker_config(spec: &stream::TrackerSpec, seed: u64) -> Option<TrackerConfig> {
    let mut config = match spec.preset.as_str() {
        "default" => TrackerConfig::new(seed),
        "metro" => TrackerConfig::metro(seed),
        _ => return None,
    };
    if let Some(steps) = spec.steps_per_tick {
        config = config.with_steps_per_tick(steps as usize);
    }
    if let Some(fraction) = spec.churn_restart_fraction {
        config = config.with_churn_restart_fraction(fraction);
    }
    Some(config)
}

/// Server configuration (builder style).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port `0` picks an ephemeral port (the default,
    /// `127.0.0.1:0`, is what the tests and benches use).
    pub addr: String,
    /// Solver worker-pool size; `0` means the machine's available
    /// parallelism (the [`rl_net::pool::resolve_workers`] rule).
    pub workers: usize,
    /// Solution-cache capacity (entries).
    pub cache_capacity: usize,
    /// Instantiated-[`Problem`] memo capacity (entries). Problems are
    /// much heavier than replies, so this is kept small.
    pub problem_capacity: usize,
    /// Idle timeout per connection: a connection with no complete frame
    /// for this long is closed.
    pub read_timeout: Duration,
    /// Maximum accepted frame size (bytes).
    pub max_frame: usize,
    /// Per-class job-queue depth bound: a request arriving while this
    /// many jobs of its class are already waiting is rejected with
    /// [`ErrorCode::Overloaded`] instead of enqueued (cache hits and
    /// coalesced joins are unaffected — they never enqueue). `0` means
    /// unbounded.
    pub queue_depth: usize,
    /// Test instrumentation: a minimum wall-clock floor applied to every
    /// job a worker picks up (batch solves and stream ticks alike). The
    /// batching and quota tests use it to hold work in flight long
    /// enough that races become *deterministic*; production
    /// configurations leave it at zero (a no-op).
    pub solve_floor: Duration,
    /// Idle TTL for streaming sessions: a session untouched for this
    /// long is evicted (later use answers
    /// [`ErrorCode::SessionEvicted`]). `Duration::ZERO` disables
    /// eviction.
    pub session_ttl: Duration,
    /// Maximum concurrently open streaming sessions; opens beyond it are
    /// rejected with [`ErrorCode::Overloaded`]. `0` means unbounded.
    pub session_capacity: usize,
    /// Per-session mailbox bound: observations queued (pushed but not
    /// yet processed) beyond it reject the push with
    /// [`ErrorCode::Overloaded`]. `0` means unbounded.
    pub session_mailbox: usize,
    /// Batch share of the two-class weighted-fair scheduler (see the
    /// module docs); must be ≥ 1 with [`ServeConfig::stream_weight`].
    pub batch_weight: u32,
    /// Stream share of the two-class weighted-fair scheduler.
    pub stream_weight: u32,
    /// Time source for session TTL eviction; `None` means the monotonic
    /// [`SystemClock`]. Tests inject a
    /// [`ManualClock`](crate::session::ManualClock) to make eviction
    /// deterministic.
    pub clock: Option<Arc<dyn Clock>>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 0,
            cache_capacity: 512,
            problem_capacity: 16,
            read_timeout: Duration::from_secs(30),
            max_frame: protocol::DEFAULT_MAX_FRAME,
            queue_depth: 1024,
            solve_floor: Duration::ZERO,
            session_ttl: Duration::from_secs(300),
            session_capacity: 64,
            session_mailbox: 256,
            batch_weight: 1,
            stream_weight: 1,
            clock: None,
        }
    }
}

impl ServeConfig {
    /// Sets the bind address.
    pub fn with_addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Sets the worker-pool size (`0` = auto).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the solution-cache capacity.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Sets the per-connection idle timeout.
    pub fn with_read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// Sets the maximum accepted frame size.
    pub fn with_max_frame(mut self, max: usize) -> Self {
        self.max_frame = max;
        self
    }

    /// Sets the per-class job-queue depth bound (`0` = unbounded).
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Sets the job wall-clock floor (test instrumentation; see the
    /// field docs).
    pub fn with_solve_floor(mut self, floor: Duration) -> Self {
        self.solve_floor = floor;
        self
    }

    /// Sets the session idle TTL (`Duration::ZERO` = never evict).
    pub fn with_session_ttl(mut self, ttl: Duration) -> Self {
        self.session_ttl = ttl;
        self
    }

    /// Sets the open-session capacity (`0` = unbounded).
    pub fn with_session_capacity(mut self, capacity: usize) -> Self {
        self.session_capacity = capacity;
        self
    }

    /// Sets the per-session mailbox bound (`0` = unbounded).
    pub fn with_session_mailbox(mut self, mailbox: usize) -> Self {
        self.session_mailbox = mailbox;
        self
    }

    /// Sets the scheduler class weights (both clamped to ≥ 1).
    pub fn with_weights(mut self, batch: u32, stream: u32) -> Self {
        self.batch_weight = batch.max(1);
        self.stream_weight = stream.max(1);
        self
    }

    /// Injects a [`Clock`] for session TTL eviction (test
    /// instrumentation).
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = Some(clock);
        self
    }
}

/// One queued batch solve: a validated `(deployment, solver, seed)`
/// triple plus its cache key.
struct BatchJob {
    key: u64,
    preset: usize,
    solver: String,
    seed: u64,
}

/// One queued stream push: reserved observations bound for a session's
/// tracker, plus the waiting connection's reply channel.
struct StreamJob {
    session: u64,
    observations: Vec<TickObservation>,
    tx: mpsc::Sender<Result<stream::PushReply, WireError>>,
}

/// A scheduler class: one slot of the weighted-fair wheel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    Batch,
    Stream,
}

/// Builds the weighted-round-robin wheel for the two job classes,
/// interleaved (`B S B S B …`) so neither class waits a full burst of
/// the other even at skewed weights.
fn schedule_wheel(batch_weight: u32, stream_weight: u32) -> Vec<Class> {
    let (b, s) = (batch_weight.max(1), stream_weight.max(1));
    let mut wheel = Vec::with_capacity((b + s) as usize);
    for i in 0..b.max(s) {
        if i < b {
            wheel.push(Class::Batch);
        }
        if i < s {
            wheel.push(Class::Stream);
        }
    }
    wheel
}

/// The shared scheduler state: both class queues plus the shutdown
/// latch, guarded together so a successful enqueue is always drained
/// before the workers exit.
struct QueueState {
    batch: VecDeque<BatchJob>,
    stream: VecDeque<StreamJob>,
    /// Next wheel slot to offer work; advances past the slot that
    /// actually supplied a job, which is what makes the wheel
    /// weighted-fair under sustained load.
    cursor: usize,
    shutdown: bool,
}

enum Job {
    Batch(BatchJob),
    Stream(StreamJob),
}

impl QueueState {
    /// Pops the next job by walking the wheel from the cursor. The
    /// scheduler is work-conserving: when only one class has work, it
    /// runs without waiting on the other's slots.
    fn pop_next(&mut self, wheel: &[Class]) -> Option<Job> {
        for step in 0..wheel.len() {
            let slot = (self.cursor + step) % wheel.len();
            let job = match wheel[slot] {
                Class::Batch => self.batch.pop_front().map(Job::Batch),
                Class::Stream => self.stream.pop_front().map(Job::Stream),
            };
            if let Some(job) = job {
                self.cursor = (slot + 1) % wheel.len();
                return Some(job);
            }
        }
        None
    }
}

type SolveResult = Result<Arc<LocalizeReply>, WireError>;

struct PresetEntry {
    name: String,
    scenario: Scenario,
    /// Fingerprint of the preset's full configuration (name + scenario
    /// JSON), folded into every job's cache key.
    digest: u64,
}

struct Shared {
    config: ServeConfig,
    resolved_workers: usize,
    presets: Vec<PresetEntry>,
    /// The weighted-fair wheel (fixed at bind time).
    wheel: Vec<Class>,
    queue: Mutex<QueueState>,
    queue_cv: Condvar,
    /// In-flight solves: cache key -> waiters. Lock order is `inflight`
    /// before `cache` (the worker publishes results under both).
    inflight: Mutex<HashMap<u64, Vec<mpsc::Sender<SolveResult>>>>,
    cache: Mutex<LruCache<u64, Arc<LocalizeReply>>>,
    problems: Mutex<LruCache<(usize, u64), Arc<Problem>>>,
    sessions: SessionManager,
    stop: AtomicBool,
    requests: AtomicU64,
    cache_hits: AtomicU64,
    coalesced: AtomicU64,
    solves_started: AtomicU64,
    solves: AtomicU64,
    errors: AtomicU64,
    overloaded: AtomicU64,
}

impl Shared {
    fn preset_index(&self, name: &str) -> Option<usize> {
        self.presets.iter().position(|p| p.name == name)
    }

    fn stats(&self) -> ServerStats {
        // Queue before cache: the cache lock is innermost everywhere
        // else, so it is never held while waiting on the queue.
        let (batch_queued, stream_queued) = {
            let q = self.queue.lock().expect("queue lock");
            (q.batch.len() as u64, q.stream.len() as u64)
        };
        let cache = self.cache.lock().expect("cache lock");
        ServerStats {
            protocol: PROTOCOL_VERSION,
            workers: self.resolved_workers as u64,
            deployments: self.presets.iter().map(|p| p.name.clone()).collect(),
            requests: self.requests.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            solves_started: self.solves_started.load(Ordering::Relaxed),
            solves: self.solves.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            cache_entries: cache.len() as u64,
            cache_capacity: cache.capacity() as u64,
            queued: batch_queued + stream_queued,
            queue_depth: self.config.queue_depth as u64,
            overloaded: self.overloaded.load(Ordering::Relaxed),
            sessions_open: self.sessions.open_count(),
            sessions_evicted: self.sessions.evicted_count(),
            session_capacity: self.sessions.capacity() as u64,
            ticks_served: self.sessions.ticks_served(),
            batch_queued,
            stream_queued,
        }
    }

    /// The memoized problem for `(preset, seed)`, instantiating on a
    /// miss. Instantiation happens outside the lock (it can be heavy at
    /// metro scale); a racing duplicate instantiation is bit-identical
    /// by the scenario determinism contract, so last-write-wins is
    /// harmless.
    fn problem(&self, preset: usize, seed: u64) -> Arc<Problem> {
        if let Some(p) = self
            .problems
            .lock()
            .expect("problems lock")
            .get(&(preset, seed))
        {
            return Arc::clone(p);
        }
        let problem = Arc::new(self.presets[preset].scenario.instantiate(seed));
        self.problems
            .lock()
            .expect("problems lock")
            .insert((preset, seed), Arc::clone(&problem));
        problem
    }

    /// Counts and builds an [`ErrorCode::Overloaded`] rejection.
    fn overloaded_error(&self, message: String) -> WireError {
        self.overloaded.fetch_add(1, Ordering::Relaxed);
        WireError::new(ErrorCode::Overloaded, message)
    }
}

/// The problem/config fingerprint a solve is cached under: preset
/// digest, solver registry name, and instantiation seed, hashed with
/// the shared prefix-free [`Fnv1a`] writers.
pub fn job_key(preset_digest: u64, solver: &str, seed: u64) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(preset_digest);
    h.write_str(solver);
    h.write_u64(seed);
    h.finish()
}

/// Fingerprint of a preset's full configuration: its registry name plus
/// the canonical JSON encoding of its scenario (deployment geometry,
/// anchors, error model — everything that decides the measurements).
pub fn preset_digest(name: &str, scenario: &Scenario) -> u64 {
    let json = serde_json::to_string(scenario).expect("scenarios serialize infallibly");
    let mut h = Fnv1a::new();
    h.write_str(name);
    h.write_str(&json);
    h.finish()
}

/// The canonical identity of an [`stream::Request::OpenStream`]: what
/// the session token is fingerprinted from (plus a per-server nonce).
fn open_identity(source: &stream::StreamSource, spec: &stream::TrackerSpec, seed: u64) -> String {
    let source = serde_json::to_string(source).expect("stream sources serialize infallibly");
    let spec = serde_json::to_string(spec).expect("tracker specs serialize infallibly");
    format!("{source}|{spec}|{seed}")
}

/// Builds the reply for a solved problem. Fails (typed) when the solver
/// errors or produces coordinates the wire cannot carry exactly.
fn reply_for(
    problem: &Problem,
    deployment: &str,
    solver_name: &str,
    seed: u64,
) -> Result<LocalizeReply, WireError> {
    let solver = make_solver(solver_name)
        .ok_or_else(|| WireError::new(ErrorCode::UnknownSolver, solver_name))?;
    let mut rng = rl_math::rng::seeded(seed);
    let solution = solver
        .localize(problem, &mut rng)
        .map_err(|e| WireError::new(ErrorCode::SolveFailed, e.to_string()))?;
    let map = solution.positions();
    let mut positions = Vec::with_capacity(map.len());
    let mut localized = 0u64;
    for i in 0..map.len() {
        match map.get(rl_core::types::NodeId(i)) {
            Some(p) => {
                if !p.x.is_finite() || !p.y.is_finite() {
                    return Err(WireError::new(
                        ErrorCode::SolveFailed,
                        format!("node {i} has a non-finite position estimate"),
                    ));
                }
                positions.push(Some((p.x, p.y)));
                localized += 1;
            }
            None => positions.push(None),
        }
    }
    let stats = solution.stats();
    Ok(LocalizeReply {
        deployment: deployment.to_string(),
        solver: solver_name.to_string(),
        seed,
        frame: match solution.frame() {
            Frame::Absolute => "absolute".to_string(),
            Frame::Relative => "relative".to_string(),
        },
        positions,
        iterations: stats.iterations as u64,
        residual: stats.residual,
        converged: stats.converged,
        mean_error_m: problem.evaluate(&solution).ok().map(|e| e.mean_error),
        localized,
    })
}

/// The in-process equivalent of one served [`batch::Request::Localize`]:
/// the canonical reference the integration tests compare served replies
/// against, bit for bit. (The server runs exactly this computation,
/// with the problem memoized.)
///
/// # Errors
///
/// The same typed errors a server would send: unknown deployment or
/// solver, or a failed solve.
pub fn solve_direct(deployment: &str, solver: &str, seed: u64) -> Result<LocalizeReply, WireError> {
    let scenario = presets::preset(deployment)
        .ok_or_else(|| WireError::new(ErrorCode::UnknownDeployment, deployment))?;
    let problem = scenario.instantiate(seed);
    reply_for(&problem, deployment, solver, seed)
}

/// A bound, running localization server. See the module docs.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds the listener, loads the preset registry, and starts the
    /// solver worker pool. The server does not accept connections until
    /// [`Server::run`] is called.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let resolved_workers = rl_net::pool::resolve_workers(config.workers, usize::MAX);
        let presets = presets::all()
            .into_iter()
            .map(|(name, scenario)| PresetEntry {
                digest: preset_digest(name, &scenario),
                name: name.to_string(),
                scenario,
            })
            .collect();
        let clock: Arc<dyn Clock> = config
            .clock
            .clone()
            .unwrap_or_else(|| Arc::new(SystemClock::new()));
        let sessions = SessionManager::new(
            clock,
            config.session_ttl,
            config.session_capacity,
            config.session_mailbox,
        );
        let shared = Arc::new(Shared {
            resolved_workers,
            presets,
            wheel: schedule_wheel(config.batch_weight, config.stream_weight),
            queue: Mutex::new(QueueState {
                batch: VecDeque::new(),
                stream: VecDeque::new(),
                cursor: 0,
                shutdown: false,
            }),
            queue_cv: Condvar::new(),
            inflight: Mutex::new(HashMap::new()),
            cache: Mutex::new(LruCache::new(config.cache_capacity)),
            problems: Mutex::new(LruCache::new(config.problem_capacity)),
            sessions,
            stop: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            solves_started: AtomicU64::new(0),
            solves: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            overloaded: AtomicU64::new(0),
            config,
        });
        let workers = (0..resolved_workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Ok(Server {
            listener,
            local_addr,
            shared,
            workers,
        })
    }

    /// The bound address (resolves port `0` to the actual ephemeral
    /// port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Serves connections until a [`batch::Request::Shutdown`] arrives,
    /// then drains in-flight jobs, joins workers and connection
    /// handlers, and returns.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop I/O failures other than per-connection
    /// errors (which are logged to stderr and skipped).
    pub fn run(self) -> io::Result<()> {
        let mut handlers: Vec<JoinHandle<()>> = Vec::new();
        for stream in self.listener.incoming() {
            if self.shared.stop.load(Ordering::SeqCst) {
                break;
            }
            match stream {
                Ok(stream) => {
                    let shared = Arc::clone(&self.shared);
                    handlers.push(std::thread::spawn(move || {
                        handle_connection(stream, &shared)
                    }));
                }
                Err(e) => {
                    eprintln!("rl-serve: accept failed: {e}");
                }
            }
        }
        // Shutdown: workers drain both queues (every accepted job
        // answers its waiters), handlers notice the stop flag on their
        // next read tick.
        for w in self.workers {
            let _ = w.join();
        }
        for h in handlers {
            let _ = h.join();
        }
        Ok(())
    }

    /// Convenience for tests and benches: binds and serves on a
    /// background thread, returning the bound address and the serving
    /// thread's handle (joinable after a shutdown request).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn spawn(config: ServeConfig) -> io::Result<(SocketAddr, JoinHandle<io::Result<()>>)> {
        let server = Server::bind(config)?;
        let addr = server.local_addr();
        let handle = std::thread::spawn(move || server.run());
        Ok((addr, handle))
    }
}

/// Requests a shutdown: latches the queues (no further enqueues), wakes
/// the workers, and pokes the accept loop awake with a throwaway
/// connection.
fn trigger_shutdown(shared: &Shared, local_addr: SocketAddr) {
    {
        let mut q = shared.queue.lock().expect("queue lock");
        q.shutdown = true;
    }
    shared.stop.store(true, Ordering::SeqCst);
    shared.queue_cv.notify_all();
    // Unblock the blocking accept; the loop re-checks the stop flag.
    let _ = TcpStream::connect(local_addr);
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(job) = q.pop_next(&shared.wheel) {
                    break job;
                }
                if q.shutdown {
                    return;
                }
                q = shared.queue_cv.wait(q).expect("queue lock");
            }
        };
        // "Started" means picked up: the gauge moves before the solve
        // floor so tests (and operators) can observe an occupied worker.
        if let Job::Batch(_) = job {
            shared.solves_started.fetch_add(1, Ordering::Relaxed);
        }
        if !shared.config.solve_floor.is_zero() {
            std::thread::sleep(shared.config.solve_floor);
        }
        match job {
            Job::Batch(job) => run_batch_job(shared, job),
            Job::Stream(job) => {
                let result = shared.sessions.process(job.session, &job.observations);
                let _ = job.tx.send(result);
            }
        }
    }
}

fn run_batch_job(shared: &Shared, job: BatchJob) {
    let problem = shared.problem(job.preset, job.seed);
    let name = shared.presets[job.preset].name.clone();
    let result = reply_for(&problem, &name, &job.solver, job.seed).map(Arc::new);
    shared.solves.fetch_add(1, Ordering::Relaxed);
    // Publish: cache (successes only) and waiter hand-off happen
    // under the in-flight lock so no request can fall between
    // "not in flight" and "not yet cached".
    let waiters = {
        let mut inflight = shared.inflight.lock().expect("inflight lock");
        if let Ok(reply) = &result {
            shared
                .cache
                .lock()
                .expect("cache lock")
                .insert(job.key, Arc::clone(reply));
        }
        inflight.remove(&job.key).unwrap_or_default()
    };
    for tx in waiters {
        let _ = tx.send(result.clone());
    }
}

/// Handles one localize request end to end (cache, coalesce, or
/// enqueue + wait), then shapes the reply: the full frame, or its
/// [`Projection::slice`](batch::Projection::slice) when `nodes` asks
/// for a subset. The projection runs over the same (possibly cached)
/// full reply, so projected frames are byte-identical to slicing a
/// full one client-side.
fn handle_localize(
    shared: &Shared,
    deployment: &str,
    solver: &str,
    seed: u64,
    nodes: Option<&[u64]>,
) -> Response {
    match localize_reply(shared, deployment, solver, seed) {
        Err(err) => Response::Error(err),
        Ok(reply) => match nodes {
            None => batch::Response::Localized((*reply).clone()).into(),
            Some(nodes) => match batch::Projection::slice(&reply, nodes) {
                Ok(projection) => batch::Response::Projected(projection).into(),
                Err(err) => Response::Error(err),
            },
        },
    }
}

/// The cache/coalesce/enqueue core of a localize request; returns the
/// full reply every response shape is derived from.
fn localize_reply(
    shared: &Shared,
    deployment: &str,
    solver: &str,
    seed: u64,
) -> Result<Arc<LocalizeReply>, WireError> {
    shared.requests.fetch_add(1, Ordering::Relaxed);
    let Some(preset) = shared.preset_index(deployment) else {
        return Err(WireError::new(
            ErrorCode::UnknownDeployment,
            format!(
                "unknown deployment `{deployment}` (serveable: {})",
                presets::NAMES.join(", ")
            ),
        ));
    };
    if make_solver(solver).is_none() {
        return Err(WireError::new(
            ErrorCode::UnknownSolver,
            format!(
                "unknown solver `{solver}` (serveable: {})",
                SOLVER_NAMES.join(", ")
            ),
        ));
    }
    let key = job_key(shared.presets[preset].digest, solver, seed);

    let (tx, rx) = mpsc::channel();
    let enqueue = {
        let mut inflight = shared.inflight.lock().expect("inflight lock");
        if let Some(waiters) = inflight.get_mut(&key) {
            // An identical solve is already in flight: join it.
            shared.coalesced.fetch_add(1, Ordering::Relaxed);
            waiters.push(tx);
            false
        } else if let Some(reply) = shared.cache.lock().expect("cache lock").get(&key) {
            shared.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(reply));
        } else {
            inflight.insert(key, vec![tx]);
            true
        }
    };
    if enqueue {
        let mut q = shared.queue.lock().expect("queue lock");
        if q.shutdown {
            // Undo the registration; nobody will drain this job.
            drop(q);
            shared.inflight.lock().expect("inflight lock").remove(&key);
            return Err(WireError::new(
                ErrorCode::ShuttingDown,
                "server is shutting down",
            ));
        }
        let depth = shared.config.queue_depth;
        if depth > 0 && q.batch.len() >= depth {
            // Queue at its bound: reject instead of growing without
            // limit. The registration is undone the same way as the
            // shutdown path; any request that coalesced onto it in the
            // meantime receives the same typed rejection.
            drop(q);
            let err = shared.overloaded_error(format!(
                "batch job queue is full ({depth} waiting); retry after a backoff"
            ));
            let waiters = shared
                .inflight
                .lock()
                .expect("inflight lock")
                .remove(&key)
                .unwrap_or_default();
            for tx in waiters {
                let _ = tx.send(Err(err.clone()));
            }
            return Err(err);
        }
        q.batch.push_back(BatchJob {
            key,
            preset,
            solver: solver.to_string(),
            seed,
        });
        drop(q);
        shared.queue_cv.notify_one();
    }
    match rx.recv() {
        Ok(result) => result,
        Err(_) => Err(WireError::new(
            ErrorCode::SolveFailed,
            "solve abandoned during shutdown",
        )),
    }
}

/// Handles [`stream::Request::OpenStream`]: resolves the source and
/// tracker spec, then asks the [`SessionManager`] for a token.
fn handle_open(
    shared: &Shared,
    source: &stream::StreamSource,
    spec: &stream::TrackerSpec,
    seed: u64,
) -> Response {
    let universe = match source {
        stream::StreamSource::Preset { name } => match mobility::preset(name) {
            Some(scenario) => scenario.base.deployment.len(),
            None => {
                return Response::Error(WireError::new(
                    ErrorCode::UnknownDeployment,
                    format!(
                        "unknown mobility preset `{name}` (serveable: {})",
                        mobility::NAMES.join(", ")
                    ),
                ));
            }
        },
        stream::StreamSource::Custom { deployment, .. } => match presets::preset(deployment) {
            Some(scenario) => scenario.deployment.len(),
            None => {
                return Response::Error(WireError::new(
                    ErrorCode::UnknownDeployment,
                    format!(
                        "unknown deployment `{deployment}` (serveable: {})",
                        presets::NAMES.join(", ")
                    ),
                ));
            }
        },
    };
    let Some(config) = make_tracker_config(spec, seed) else {
        return Response::Error(WireError::new(
            ErrorCode::UnknownSolver,
            format!(
                "unknown tracker preset `{}` (serveable: {})",
                spec.preset,
                TRACKER_PRESET_NAMES.join(", ")
            ),
        ));
    };
    let tracker = StreamingTracker::with_lss(config);
    match shared
        .sessions
        .open(&open_identity(source, spec, seed), universe, tracker)
    {
        Ok(session) => stream::Response::StreamOpened {
            session,
            universe: universe as u64,
        }
        .into(),
        Err(err) => {
            if err.code == ErrorCode::Overloaded {
                shared.overloaded.fetch_add(1, Ordering::Relaxed);
            }
            Response::Error(err)
        }
    }
}

/// Handles [`stream::Request::PushTicks`]: validates and converts the
/// observations, reserves mailbox room, enqueues one stream job, and
/// waits for the worker's reply.
fn handle_push(
    shared: &Shared,
    session: u64,
    observations: &[stream::WireObservation],
) -> Response {
    let mut converted = Vec::with_capacity(observations.len());
    for obs in observations {
        match obs.to_observation() {
            Ok(obs) => converted.push(obs),
            Err(err) => return Response::Error(err),
        }
    }
    let universe = match shared.sessions.reserve(session, converted.len()) {
        Ok(universe) => universe,
        Err(err) => {
            if err.code == ErrorCode::Overloaded {
                shared.overloaded.fetch_add(1, Ordering::Relaxed);
            }
            return Response::Error(err);
        }
    };
    if let Some(obs) = converted
        .iter()
        .find(|obs| obs.measurements.node_count() != universe)
    {
        shared.sessions.release(session, converted.len());
        return Response::Error(WireError::new(
            ErrorCode::InvalidObservation,
            format!(
                "tick {} declares a {}-slot universe; the session's is {universe}",
                obs.tick,
                obs.measurements.node_count()
            ),
        ));
    }
    let (tx, rx) = mpsc::channel();
    {
        let mut q = shared.queue.lock().expect("queue lock");
        if q.shutdown {
            drop(q);
            shared.sessions.release(session, converted.len());
            return Response::Error(WireError::new(
                ErrorCode::ShuttingDown,
                "server is shutting down",
            ));
        }
        let depth = shared.config.queue_depth;
        if depth > 0 && q.stream.len() >= depth {
            drop(q);
            shared.sessions.release(session, converted.len());
            return Response::Error(shared.overloaded_error(format!(
                "stream job queue is full ({depth} waiting); retry after a backoff"
            )));
        }
        q.stream.push_back(StreamJob {
            session,
            observations: converted,
            tx,
        });
    }
    shared.queue_cv.notify_one();
    match rx.recv() {
        Ok(Ok(reply)) => stream::Response::TicksPushed(reply).into(),
        Ok(Err(err)) => Response::Error(err),
        Err(_) => Response::Error(WireError::new(
            ErrorCode::SolveFailed,
            "push abandoned during shutdown",
        )),
    }
}

fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    // No Nagle: the protocol is strict request/response with small
    // frames, so coalescing delay is pure added latency.
    if stream.set_nodelay(true).is_err()
        || stream.set_read_timeout(Some(READ_TICK)).is_err()
        || stream
            .set_write_timeout(Some(shared.config.read_timeout))
            .is_err()
    {
        return;
    }
    let local_addr = stream.local_addr().ok();
    // A connection that never sends Hello speaks the current protocol;
    // a Hello pins whatever both sides support (v1 connections are
    // batch-only — see the protocol module docs).
    let mut negotiated = PROTOCOL_VERSION;
    loop {
        let payload = match read_frame_polled(&mut stream, shared) {
            ReadOutcome::Frame(payload) => payload,
            ReadOutcome::TooLarge(declared) => {
                // Typed rejection, then close: past an oversized length
                // declaration the byte stream is unsynchronized.
                let response = Response::Error(WireError::new(
                    ErrorCode::FrameTooLarge,
                    format!(
                        "frame of {declared} bytes exceeds the {}-byte maximum",
                        shared.config.max_frame
                    ),
                ));
                let _ = send_response(&mut stream, shared, &response);
                return;
            }
            ReadOutcome::Closed
            | ReadOutcome::IdleTimeout
            | ReadOutcome::Stopped
            | ReadOutcome::Failed => return,
        };
        let request: Request = match protocol::decode(&payload) {
            Ok(request) => request,
            Err(reason) => {
                // The frame boundary was intact, so the connection can
                // keep serving after the typed rejection.
                let response = Response::Error(WireError::new(ErrorCode::MalformedFrame, reason));
                if !send_response(&mut stream, shared, &response) {
                    return;
                }
                continue;
            }
        };
        let response = match request {
            Request::Hello { protocol } => {
                if (MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&protocol) {
                    negotiated = protocol;
                    Response::Hello {
                        protocol: negotiated,
                        server: concat!("rl-serve/", env!("CARGO_PKG_VERSION")).to_string(),
                    }
                } else {
                    Response::Error(WireError::new(
                        ErrorCode::UnsupportedProtocol,
                        format!(
                            "client speaks v{protocol}, server speaks \
                             v{MIN_PROTOCOL_VERSION}..=v{PROTOCOL_VERSION}"
                        ),
                    ))
                }
            }
            Request::Batch(request) => handle_batch(shared, request, negotiated, &mut stream),
            Request::Stream(request) => {
                if negotiated < 2 {
                    Response::Error(WireError::new(
                        ErrorCode::UnsupportedProtocol,
                        format!("stream requests need protocol v2; this connection negotiated v{negotiated}"),
                    ))
                } else if shared.stop.load(Ordering::SeqCst) {
                    Response::Error(WireError::new(
                        ErrorCode::ShuttingDown,
                        "server is shutting down",
                    ))
                } else {
                    match request {
                        stream::Request::OpenStream {
                            source,
                            tracker,
                            seed,
                        } => handle_open(shared, &source, &tracker, seed),
                        stream::Request::PushTicks {
                            session,
                            observations,
                        } => handle_push(shared, session, &observations),
                        stream::Request::ReadSolution { session, nodes } => {
                            match shared.sessions.read(session, nodes.as_deref()) {
                                Ok(reply) => stream::Response::Solution(reply).into(),
                                Err(err) => Response::Error(err),
                            }
                        }
                        stream::Request::CloseStream { session } => {
                            match shared.sessions.close(session) {
                                Ok(ticks) => {
                                    stream::Response::StreamClosed { session, ticks }.into()
                                }
                                Err(err) => Response::Error(err),
                            }
                        }
                    }
                }
            }
        };
        // Shutdown is terminal for the connection: the ack was already
        // written inside handle_batch.
        let Some(response) = response_or_shutdown(response, shared, local_addr) else {
            return;
        };
        if !send_response(&mut stream, shared, &response) {
            return;
        }
    }
}

/// Marker wrapped around the shutdown acknowledgment so the connection
/// loop knows to stop after triggering it.
fn response_or_shutdown(
    response: Response,
    shared: &Shared,
    local_addr: Option<SocketAddr>,
) -> Option<Response> {
    if matches!(response, Response::Batch(batch::Response::ShuttingDown)) {
        if let Some(addr) = local_addr {
            trigger_shutdown(shared, addr);
        }
        return None;
    }
    Some(response)
}

/// Dispatches one batch-namespace request.
fn handle_batch(
    shared: &Shared,
    request: batch::Request,
    negotiated: u32,
    stream: &mut TcpStream,
) -> Response {
    match request {
        batch::Request::Status => batch::Response::Status(shared.stats()).into(),
        batch::Request::Shutdown => {
            // Ack first (the caller tears the server down right after).
            let ack: Response = batch::Response::ShuttingDown.into();
            let _ = send_response(stream, shared, &ack);
            ack
        }
        batch::Request::Localize {
            deployment,
            solver,
            seed,
            nodes,
        } => {
            if negotiated < 2 && nodes.is_some() {
                Response::Error(WireError::new(
                    ErrorCode::UnsupportedProtocol,
                    format!(
                        "the `nodes` projection needs protocol v2; \
                         this connection negotiated v{negotiated}"
                    ),
                ))
            } else if shared.stop.load(Ordering::SeqCst) {
                Response::Error(WireError::new(
                    ErrorCode::ShuttingDown,
                    "server is shutting down",
                ))
            } else {
                handle_localize(shared, &deployment, &solver, seed, nodes.as_deref())
            }
        }
    }
}

/// Outcome of one polled frame read.
enum ReadOutcome {
    Frame(Vec<u8>),
    /// Clean close between frames.
    Closed,
    /// No complete frame within the idle timeout.
    IdleTimeout,
    /// Declared length over the maximum (connection must close).
    TooLarge(usize),
    /// The server is shutting down.
    Stopped,
    /// Transport failure (reset, mid-frame close, …); nothing to answer.
    Failed,
}

/// Reads one frame with a short poll tick so the idle timeout and the
/// server-wide stop flag are both honored, even mid-frame.
fn read_frame_polled(stream: &mut TcpStream, shared: &Shared) -> ReadOutcome {
    use std::io::Read;
    let max = shared.config.max_frame;
    let idle_timeout = shared.config.read_timeout;
    let mut idle = Duration::ZERO;
    let mut buf: Vec<u8> = Vec::with_capacity(4);
    let mut need = 4usize;
    let mut in_payload = false;
    let mut chunk = [0u8; 4096];
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return ReadOutcome::Stopped;
        }
        let want = (need - buf.len()).min(chunk.len());
        match stream.read(&mut chunk[..want]) {
            Ok(0) => {
                return if buf.is_empty() && !in_payload {
                    ReadOutcome::Closed
                } else {
                    // Closed mid-frame: transport failure, nothing to answer.
                    ReadOutcome::Failed
                };
            }
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                idle = Duration::ZERO;
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                idle += READ_TICK;
                if idle >= idle_timeout {
                    return ReadOutcome::IdleTimeout;
                }
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return ReadOutcome::Failed,
        }
        if !in_payload && buf.len() == 4 {
            let declared = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
            if declared > max {
                return ReadOutcome::TooLarge(declared);
            }
            if declared == 0 {
                return ReadOutcome::Frame(Vec::new());
            }
            in_payload = true;
            need = declared;
            buf = Vec::with_capacity(declared);
        } else if in_payload && buf.len() == need {
            return ReadOutcome::Frame(buf);
        }
    }
}

fn send_response(stream: &mut TcpStream, shared: &Shared, response: &Response) -> bool {
    if matches!(response, Response::Error(_)) {
        shared.errors.fetch_add(1, Ordering::Relaxed);
    }
    protocol::send(stream, response, usize::MAX).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solver_registry_resolves_every_listed_name() {
        for &name in SOLVER_NAMES {
            assert!(make_solver(name).is_some(), "solver {name} must resolve");
        }
        assert!(make_solver("gradient-descent-from-mars").is_none());
    }

    #[test]
    fn tracker_registry_resolves_every_listed_preset() {
        for &name in TRACKER_PRESET_NAMES {
            let spec = stream::TrackerSpec {
                preset: name.to_string(),
                ..stream::TrackerSpec::default()
            };
            assert!(
                make_tracker_config(&spec, 7).is_some(),
                "tracker preset {name} must resolve"
            );
        }
        let unknown = stream::TrackerSpec {
            preset: "imaginary".to_string(),
            ..stream::TrackerSpec::default()
        };
        assert!(make_tracker_config(&unknown, 7).is_none());
        let tweaked = stream::TrackerSpec {
            preset: "default".to_string(),
            steps_per_tick: Some(9),
            churn_restart_fraction: Some(0.5),
        };
        let config = make_tracker_config(&tweaked, 7).unwrap();
        assert_eq!(config.warm.max_iterations, 9);
        assert_eq!(config.churn_restart_fraction, 0.5);
    }

    #[test]
    fn job_keys_separate_every_axis() {
        let d1 = 0x1111;
        let d2 = 0x2222;
        let base = job_key(d1, "lss", 7);
        assert_ne!(base, job_key(d2, "lss", 7));
        assert_ne!(base, job_key(d1, "mds-map", 7));
        assert_ne!(base, job_key(d1, "lss", 8));
        assert_eq!(base, job_key(d1, "lss", 7));
    }

    #[test]
    fn preset_digests_are_stable_and_distinct() {
        let town = presets::preset("town").unwrap();
        let grass = presets::preset("grass-grid").unwrap();
        assert_eq!(preset_digest("town", &town), preset_digest("town", &town));
        assert_ne!(
            preset_digest("town", &town),
            preset_digest("grass-grid", &grass)
        );
        // Same geometry under a different registry name is a different
        // serveable thing.
        assert_ne!(preset_digest("town", &town), preset_digest("town2", &town));
    }

    #[test]
    fn schedule_wheel_interleaves_weighted_slots() {
        assert_eq!(schedule_wheel(1, 1), vec![Class::Batch, Class::Stream]);
        assert_eq!(
            schedule_wheel(3, 1),
            vec![Class::Batch, Class::Stream, Class::Batch, Class::Batch]
        );
        // Degenerate weights still yield a serviceable wheel.
        assert_eq!(schedule_wheel(0, 0), vec![Class::Batch, Class::Stream]);
    }

    #[test]
    fn weighted_wheel_shares_service_between_classes() {
        let wheel = schedule_wheel(2, 1);
        let mut q = QueueState {
            batch: VecDeque::new(),
            stream: VecDeque::new(),
            cursor: 0,
            shutdown: false,
        };
        let (tx, _rx) = mpsc::channel();
        for i in 0..6 {
            q.batch.push_back(BatchJob {
                key: i,
                preset: 0,
                solver: "lss".to_string(),
                seed: i,
            });
            q.stream.push_back(StreamJob {
                session: i,
                observations: Vec::new(),
                tx: tx.clone(),
            });
        }
        let mut order = Vec::new();
        while let Some(job) = q.pop_next(&wheel) {
            order.push(match job {
                Job::Batch(_) => Class::Batch,
                Job::Stream(_) => Class::Stream,
            });
        }
        // 2:1 batch:stream service while both queues are backlogged,
        // then the work-conserving drain of the leftover stream jobs.
        assert_eq!(
            order,
            vec![
                Class::Batch,
                Class::Stream,
                Class::Batch,
                Class::Batch,
                Class::Stream,
                Class::Batch,
                Class::Batch,
                Class::Stream,
                Class::Batch,
                Class::Stream,
                Class::Stream,
                Class::Stream,
            ]
        );
    }

    #[test]
    fn solve_direct_is_deterministic_and_typed_on_bad_input() {
        let a = solve_direct("parking-lot", "multilateration", 3).unwrap();
        let b = solve_direct("parking-lot", "multilateration", 3).unwrap();
        assert_eq!(a, b);
        for (pa, pb) in a.positions.iter().zip(&b.positions) {
            match (pa, pb) {
                (Some(pa), Some(pb)) => {
                    assert_eq!(pa.0.to_bits(), pb.0.to_bits());
                    assert_eq!(pa.1.to_bits(), pb.1.to_bits());
                }
                (None, None) => {}
                _ => panic!("localization sets diverged"),
            }
        }
        assert_eq!(
            solve_direct("nowhere", "lss", 1).unwrap_err().code,
            ErrorCode::UnknownDeployment
        );
        assert_eq!(
            solve_direct("town", "nosolver", 1).unwrap_err().code,
            ErrorCode::UnknownSolver
        );
    }
}
