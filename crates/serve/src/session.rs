//! Server-owned streaming sessions: the state behind the protocol's
//! `stream` namespace.
//!
//! A session pairs a [`StreamingTracker`] with a capability token and a
//! bounded mailbox. The [`SessionManager`] owns every session, hands out
//! tokens on open, enforces the capacity and mailbox quotas, and evicts
//! sessions that sit idle past the TTL. Time is injected through the
//! [`Clock`] trait so eviction is deterministic under test (see
//! [`ManualClock`]).
//!
//! # Lifecycle
//!
//! ```text
//! open ──► active ──┬── push/read (touches last-active) ──► active
//!                   ├── close ──────────────────────────► gone
//!                   └── idle ≥ TTL, mailbox drained ─────► evicted
//! ```
//!
//! Tokens for evicted sessions are remembered (a bounded tombstone set)
//! so clients get the typed [`ErrorCode::SessionEvicted`] instead of an
//! indistinguishable [`ErrorCode::UnknownSession`].
//!
//! # Determinism
//!
//! A token is an FNV-1a fingerprint of the open request's identity plus
//! a per-manager nonce — no wall clock, no randomness — so a scripted
//! client run against a fresh server always sees the same tokens.
//! Session *state* is exactly a [`StreamingTracker`], so solutions and
//! fingerprints read through the wire are bit-identical to driving the
//! tracker directly.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rl_core::tracking::{solution_fingerprint, StreamingTracker, TickObservation, Tracker};
use rl_core::types::NodeId;
use rl_math::fingerprint::Fnv1a;

use crate::protocol::stream::{PushReply, SolutionReply};
use crate::protocol::{ErrorCode, WireError};

/// Tombstones remembered for evicted sessions before the set is
/// cleared wholesale (old evictions then degrade to
/// [`ErrorCode::UnknownSession`], which is honest enough).
const EVICTED_MEMORY: usize = 4096;

/// A monotonic time source, injected so TTL eviction is testable
/// without sleeping. Implementations report elapsed time since their
/// own fixed epoch; only differences are meaningful.
pub trait Clock: Send + Sync + fmt::Debug {
    /// Monotonic now, as elapsed time since the clock's epoch.
    fn now(&self) -> Duration;
}

/// The production [`Clock`]: monotonic time since construction.
#[derive(Debug)]
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// A clock whose epoch is "now".
    pub fn new() -> Self {
        SystemClock {
            origin: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn now(&self) -> Duration {
        self.origin.elapsed()
    }
}

/// A hand-cranked [`Clock`] for deterministic tests: time only moves
/// when [`ManualClock::advance`] is called.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: Mutex<Duration>,
}

impl ManualClock {
    /// A clock frozen at its epoch.
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// Moves time forward by `by`.
    pub fn advance(&self, by: Duration) {
        let mut now = self.now.lock().expect("clock poisoned");
        *now += by;
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Duration {
        *self.now.lock().expect("clock poisoned")
    }
}

/// One live session: a tracker plus the bookkeeping the quotas need.
struct SessionState {
    tracker: StreamingTracker,
    /// Slot-universe size every observation must match.
    universe: usize,
    /// Last time a request touched this session (mailbox reservations
    /// count — a session with queued work is never idle).
    last_active: Duration,
    /// Observations reserved in the mailbox but not yet processed.
    pending: usize,
}

/// Owns every streaming session on a server: token issue, lookup,
/// mailbox accounting, and TTL eviction. All methods take `&self` —
/// the manager is shared freely across connection and worker threads.
///
/// Lock order: the session map is always taken before any individual
/// session's lock, and per-session work (tracker ticks) runs with the
/// map lock released.
pub struct SessionManager {
    clock: Arc<dyn Clock>,
    /// Idle eviction threshold; `Duration::ZERO` disables eviction.
    ttl: Duration,
    /// Maximum concurrently open sessions; `0` means unbounded.
    capacity: usize,
    /// Maximum queued-but-unprocessed observations per session; `0`
    /// means unbounded.
    mailbox: usize,
    sessions: Mutex<HashMap<u64, Arc<Mutex<SessionState>>>>,
    evicted: Mutex<HashSet<u64>>,
    /// Nonce for token derivation; also the lifetime open count.
    opened: AtomicU64,
    evicted_total: AtomicU64,
    ticks_served: AtomicU64,
}

impl fmt::Debug for SessionManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SessionManager")
            .field("ttl", &self.ttl)
            .field("capacity", &self.capacity)
            .field("mailbox", &self.mailbox)
            .field("open", &self.open_count())
            .finish_non_exhaustive()
    }
}

impl SessionManager {
    /// A manager enforcing the given quotas against the given clock.
    pub fn new(clock: Arc<dyn Clock>, ttl: Duration, capacity: usize, mailbox: usize) -> Self {
        SessionManager {
            clock,
            ttl,
            capacity,
            mailbox,
            sessions: Mutex::new(HashMap::new()),
            evicted: Mutex::new(HashSet::new()),
            opened: AtomicU64::new(0),
            evicted_total: AtomicU64::new(0),
            ticks_served: AtomicU64::new(0),
        }
    }

    /// Opens a session around a fresh tracker and returns its token.
    /// `identity` is the canonical encoding of the open request (source
    /// + tracker spec + seed) — it seeds the token fingerprint.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::Overloaded`] when the session capacity is reached.
    pub fn open(
        &self,
        identity: &str,
        universe: usize,
        tracker: StreamingTracker,
    ) -> Result<u64, WireError> {
        self.sweep();
        let now = self.clock.now();
        let mut sessions = self.sessions.lock().expect("session map poisoned");
        if self.capacity > 0 && sessions.len() >= self.capacity {
            return Err(WireError::new(
                ErrorCode::Overloaded,
                format!("session capacity of {} reached", self.capacity),
            ));
        }
        let evicted = self.evicted.lock().expect("tombstones poisoned");
        let token = loop {
            let nonce = self.opened.fetch_add(1, Ordering::Relaxed);
            let mut hash = Fnv1a::new();
            hash.write_str(identity);
            hash.write_u64(nonce);
            let token = hash.finish();
            if !sessions.contains_key(&token) && !evicted.contains(&token) {
                break token;
            }
        };
        drop(evicted);
        sessions.insert(
            token,
            Arc::new(Mutex::new(SessionState {
                tracker,
                universe,
                last_active: now,
                pending: 0,
            })),
        );
        Ok(token)
    }

    /// Reserves `count` mailbox slots ahead of enqueueing a push, and
    /// returns the session's universe size for observation validation.
    /// Must be balanced by [`SessionManager::process`] (normally) or
    /// [`SessionManager::release`] (when the enqueue itself fails).
    ///
    /// # Errors
    ///
    /// [`ErrorCode::UnknownSession`] / [`ErrorCode::SessionEvicted`] for
    /// a bad token; [`ErrorCode::Overloaded`] when the reservation would
    /// overflow the mailbox.
    pub fn reserve(&self, token: u64, count: usize) -> Result<usize, WireError> {
        let session = self.lookup(token)?;
        let mut state = session.lock().expect("session poisoned");
        if self.mailbox > 0 && state.pending + count > self.mailbox {
            return Err(WireError::new(
                ErrorCode::Overloaded,
                format!(
                    "push of {count} observations would overflow the session's \
                     {}-slot mailbox ({} already queued)",
                    self.mailbox, state.pending
                ),
            ));
        }
        state.pending += count;
        state.last_active = self.clock.now();
        Ok(state.universe)
    }

    /// Returns `count` reserved mailbox slots without processing them
    /// (the enqueue was rejected after a successful reservation).
    pub fn release(&self, token: u64, count: usize) {
        if let Ok(session) = self.lookup(token) {
            let mut state = session.lock().expect("session poisoned");
            state.pending = state.pending.saturating_sub(count);
            state.last_active = self.clock.now();
        }
    }

    /// Feeds reserved observations through the session's tracker (the
    /// worker half of a push). Frees the reservation whether or not the
    /// tracker accepts every tick.
    ///
    /// # Errors
    ///
    /// A bad token, or [`ErrorCode::SolveFailed`] when the tracker
    /// rejects an observation — the session stays usable and ticks
    /// consumed so far are reflected in the message.
    pub fn process(
        &self,
        token: u64,
        observations: &[TickObservation],
    ) -> Result<PushReply, WireError> {
        let session = self.lookup(token)?;
        let mut state = session.lock().expect("session poisoned");
        state.pending = state.pending.saturating_sub(observations.len());
        state.last_active = self.clock.now();
        let mut accepted = 0u64;
        for obs in observations {
            if let Err(e) = state.tracker.observe(obs) {
                return Err(WireError::new(
                    ErrorCode::SolveFailed,
                    format!(
                        "tick {} rejected after {accepted} of {} accepted: {e}",
                        obs.tick,
                        observations.len()
                    ),
                ));
            }
            accepted += 1;
            self.ticks_served.fetch_add(1, Ordering::Relaxed);
        }
        Ok(PushReply {
            session: token,
            accepted,
            ticks: state.tracker.ticks(),
            warm_updates: state.tracker.warm_updates(),
            cold_solves: state.tracker.cold_solves(),
            fingerprint: state.tracker.latest().map_or(0, solution_fingerprint),
        })
    }

    /// Reads the session's latest solution, optionally projected onto
    /// `nodes`. The reply's fingerprint is always of the full solution.
    ///
    /// # Errors
    ///
    /// A bad token; [`ErrorCode::SolveFailed`] when no tick has been
    /// solved yet; [`ErrorCode::UnknownNode`] for an out-of-universe
    /// projection id.
    pub fn read(&self, token: u64, nodes: Option<&[u64]>) -> Result<SolutionReply, WireError> {
        let session = self.lookup(token)?;
        let mut state = session.lock().expect("session poisoned");
        state.last_active = self.clock.now();
        let universe = state.universe;
        let ticks = state.tracker.ticks();
        let Some(solution) = state.tracker.latest() else {
            return Err(WireError::new(
                ErrorCode::SolveFailed,
                "the session has no solution yet; push at least one tick first",
            ));
        };
        let fingerprint = solution_fingerprint(solution);
        let frame = match solution.frame() {
            rl_core::problem::Frame::Absolute => "absolute".to_string(),
            rl_core::problem::Frame::Relative => "relative".to_string(),
        };
        let slot = |id: usize| solution.positions().get(NodeId(id)).map(|p| (p.x, p.y));
        let (nodes, positions) = match nodes {
            None => (None, (0..universe).map(slot).collect::<Vec<_>>()),
            Some(ids) => {
                let mut positions = Vec::with_capacity(ids.len());
                for &id in ids {
                    if id as usize >= universe {
                        return Err(WireError::new(
                            ErrorCode::UnknownNode,
                            format!("node {id} outside the {universe}-slot universe"),
                        ));
                    }
                    positions.push(slot(id as usize));
                }
                (Some(ids.to_vec()), positions)
            }
        };
        Ok(SolutionReply {
            session: token,
            ticks,
            frame,
            nodes,
            localized: positions.iter().flatten().count() as u64,
            positions,
            fingerprint,
        })
    }

    /// Closes a session and returns the ticks it consumed.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::UnknownSession`] / [`ErrorCode::SessionEvicted`]
    /// for a bad token.
    pub fn close(&self, token: u64) -> Result<u64, WireError> {
        self.sweep();
        let removed = {
            let mut sessions = self.sessions.lock().expect("session map poisoned");
            sessions.remove(&token)
        };
        match removed {
            Some(session) => {
                let state = session.lock().expect("session poisoned");
                Ok(state.tracker.ticks())
            }
            None => Err(self.missing(token)),
        }
    }

    /// Evicts every session idle past the TTL. Sessions with reserved
    /// mailbox slots are never evicted (their work is in flight). A
    /// no-op when the TTL is zero.
    pub fn sweep(&self) {
        if self.ttl.is_zero() {
            return;
        }
        let now = self.clock.now();
        let mut sessions = self.sessions.lock().expect("session map poisoned");
        let expired: Vec<u64> = sessions
            .iter()
            .filter(|(_, session)| {
                let state = session.lock().expect("session poisoned");
                state.pending == 0 && now.saturating_sub(state.last_active) >= self.ttl
            })
            .map(|(&token, _)| token)
            .collect();
        if expired.is_empty() {
            return;
        }
        let mut evicted = self.evicted.lock().expect("tombstones poisoned");
        if evicted.len() + expired.len() > EVICTED_MEMORY {
            evicted.clear();
        }
        for token in expired {
            sessions.remove(&token);
            evicted.insert(token);
            self.evicted_total.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Currently open sessions.
    pub fn open_count(&self) -> u64 {
        self.sessions.lock().expect("session map poisoned").len() as u64
    }

    /// Lifetime TTL evictions.
    pub fn evicted_count(&self) -> u64 {
        self.evicted_total.load(Ordering::Relaxed)
    }

    /// Lifetime observations fed through session trackers.
    pub fn ticks_served(&self) -> u64 {
        self.ticks_served.load(Ordering::Relaxed)
    }

    /// The configured session capacity (`0` = unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn lookup(&self, token: u64) -> Result<Arc<Mutex<SessionState>>, WireError> {
        self.sweep();
        let sessions = self.sessions.lock().expect("session map poisoned");
        match sessions.get(&token) {
            Some(session) => Ok(Arc::clone(session)),
            None => Err(self.missing(token)),
        }
    }

    fn missing(&self, token: u64) -> WireError {
        let evicted = self.evicted.lock().expect("tombstones poisoned");
        if evicted.contains(&token) {
            WireError::new(
                ErrorCode::SessionEvicted,
                format!("session {token:#018x} was evicted after sitting idle"),
            )
        } else {
            WireError::new(
                ErrorCode::UnknownSession,
                format!("no session {token:#018x}"),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl_core::tracking::TrackerConfig;
    use rl_core::types::Anchor;
    use rl_geom::Point2;
    use rl_ranging::measurement::MeasurementSet;

    fn tracker(seed: u64) -> StreamingTracker {
        StreamingTracker::with_lss(TrackerConfig::new(seed))
    }

    /// A rigid 4-node square with 3 anchors: always solvable.
    fn square_tick(tick: u64) -> TickObservation {
        let mut measurements = MeasurementSet::new(4);
        let truth = [
            Point2::new(0.0, 0.0),
            Point2::new(10.0, 0.0),
            Point2::new(10.0, 10.0),
            Point2::new(0.0, 10.0),
        ];
        for a in 0..4usize {
            for b in (a + 1)..4 {
                let d = truth[a].distance(truth[b]);
                measurements.insert_weighted(NodeId(a), NodeId(b), d, 1.0);
            }
        }
        TickObservation {
            tick,
            measurements,
            anchors: vec![
                Anchor::new(NodeId(0), truth[0]),
                Anchor::new(NodeId(1), truth[1]),
                Anchor::new(NodeId(3), truth[3]),
            ],
            active: (0..4).map(NodeId).collect(),
            joined: if tick == 0 {
                (0..4).map(NodeId).collect()
            } else {
                Vec::new()
            },
            left: Vec::new(),
            truth: Some(truth.to_vec()),
        }
    }

    fn manager(
        ttl: Duration,
        capacity: usize,
        mailbox: usize,
    ) -> (SessionManager, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        let manager = SessionManager::new(clock.clone(), ttl, capacity, mailbox);
        (manager, clock)
    }

    #[test]
    fn sessions_open_push_read_and_close() {
        let (manager, _) = manager(Duration::from_secs(300), 4, 16);
        let token = manager.open("id", 4, tracker(7)).unwrap();
        assert_eq!(manager.reserve(token, 2).unwrap(), 4);
        let reply = manager
            .process(token, &[square_tick(0), square_tick(1)])
            .unwrap();
        assert_eq!(reply.session, token);
        assert_eq!(reply.accepted, 2);
        assert_eq!(reply.ticks, 2);
        assert_eq!(reply.cold_solves, 1);
        assert_eq!(reply.warm_updates, 1);
        let read = manager.read(token, None).unwrap();
        assert_eq!(read.positions.len(), 4);
        assert_eq!(read.localized, 4);
        assert_eq!(read.fingerprint, reply.fingerprint);
        let projected = manager.read(token, Some(&[2, 2, 0])).unwrap();
        assert_eq!(projected.positions.len(), 3);
        assert_eq!(projected.positions[0], projected.positions[1]);
        assert_eq!(projected.positions[2], read.positions[0]);
        assert_eq!(projected.fingerprint, read.fingerprint);
        assert_eq!(manager.ticks_served(), 2);
        assert_eq!(manager.close(token).unwrap(), 2);
        assert!(matches!(
            manager.read(token, None).unwrap_err().code,
            ErrorCode::UnknownSession
        ));
    }

    #[test]
    fn reads_before_any_tick_are_typed_errors() {
        let (manager, _) = manager(Duration::ZERO, 0, 0);
        let token = manager.open("id", 4, tracker(7)).unwrap();
        assert!(matches!(
            manager.read(token, None).unwrap_err().code,
            ErrorCode::SolveFailed
        ));
        assert!(matches!(
            manager.read(token, Some(&[9])).unwrap_err().code,
            ErrorCode::SolveFailed
        ));
    }

    #[test]
    fn projections_reject_out_of_universe_nodes() {
        let (manager, _) = manager(Duration::ZERO, 0, 0);
        let token = manager.open("id", 4, tracker(7)).unwrap();
        manager.reserve(token, 1).unwrap();
        manager.process(token, &[square_tick(0)]).unwrap();
        assert!(matches!(
            manager.read(token, Some(&[4])).unwrap_err().code,
            ErrorCode::UnknownNode
        ));
    }

    #[test]
    fn capacity_and_mailbox_quotas_reject_with_overloaded() {
        let (manager, _) = manager(Duration::from_secs(300), 1, 2);
        let token = manager.open("a", 4, tracker(1)).unwrap();
        assert!(matches!(
            manager.open("b", 4, tracker(2)).unwrap_err().code,
            ErrorCode::Overloaded
        ));
        manager.reserve(token, 2).unwrap();
        assert!(matches!(
            manager.reserve(token, 1).unwrap_err().code,
            ErrorCode::Overloaded
        ));
        // Releasing the reservation frees the mailbox again.
        manager.release(token, 2);
        assert_eq!(manager.reserve(token, 2).unwrap(), 4);
    }

    #[test]
    fn idle_sessions_evict_after_the_ttl() {
        let ttl = Duration::from_secs(60);
        let (manager, clock) = manager(ttl, 0, 0);
        let idle = manager.open("idle", 4, tracker(1)).unwrap();
        let busy = manager.open("busy", 4, tracker(2)).unwrap();
        clock.advance(Duration::from_secs(59));
        // Touching `busy` resets its idle timer.
        manager.reserve(busy, 1).unwrap();
        manager.process(busy, &[square_tick(0)]).unwrap();
        clock.advance(Duration::from_secs(1));
        manager.sweep();
        assert_eq!(manager.open_count(), 1);
        assert_eq!(manager.evicted_count(), 1);
        assert!(matches!(
            manager.read(idle, None).unwrap_err().code,
            ErrorCode::SessionEvicted
        ));
        assert!(manager.read(busy, None).is_ok());
    }

    #[test]
    fn sessions_with_queued_work_never_evict() {
        let ttl = Duration::from_secs(60);
        let (manager, clock) = manager(ttl, 0, 0);
        let token = manager.open("id", 4, tracker(1)).unwrap();
        manager.reserve(token, 1).unwrap();
        clock.advance(Duration::from_secs(3600));
        manager.sweep();
        assert_eq!(manager.open_count(), 1);
        // Draining the mailbox re-arms the TTL from "now".
        manager.process(token, &[square_tick(0)]).unwrap();
        clock.advance(ttl);
        manager.sweep();
        assert_eq!(manager.open_count(), 0);
        assert!(matches!(
            manager.close(token).unwrap_err().code,
            ErrorCode::SessionEvicted
        ));
    }

    #[test]
    fn zero_ttl_disables_eviction() {
        let (manager, clock) = manager(Duration::ZERO, 0, 0);
        let token = manager.open("id", 4, tracker(1)).unwrap();
        clock.advance(Duration::from_secs(1_000_000));
        manager.sweep();
        assert!(manager.close(token).is_ok());
    }

    #[test]
    fn tokens_are_deterministic_for_a_fresh_manager() {
        let (a, _) = manager(Duration::ZERO, 0, 0);
        let (b, _) = manager(Duration::ZERO, 0, 0);
        let ta = a.open("same-identity", 4, tracker(7)).unwrap();
        let tb = b.open("same-identity", 4, tracker(7)).unwrap();
        assert_eq!(ta, tb);
        // A second open of the same identity gets a distinct token.
        let ta2 = a.open("same-identity", 4, tracker(7)).unwrap();
        assert_ne!(ta, ta2);
    }

    #[test]
    fn tracker_errors_free_the_mailbox_and_keep_the_session() {
        let (manager, _) = manager(Duration::ZERO, 0, 2);
        let token = manager.open("id", 4, tracker(7)).unwrap();
        let mut bad = square_tick(0);
        bad.active.clear(); // empty active set: tracker rejects it
        manager.reserve(token, 1).unwrap();
        let err = manager.process(token, &[bad]).unwrap_err();
        assert!(matches!(err.code, ErrorCode::SolveFailed));
        // The reservation was freed and the session still works.
        manager.reserve(token, 2).unwrap();
        let reply = manager
            .process(token, &[square_tick(1), square_tick(2)])
            .unwrap();
        assert_eq!(reply.accepted, 2);
        // Error ticks still count toward the lifetime tick counter.
        assert_eq!(reply.ticks, 3);
    }
}
