//! Chirp-train configuration and scheduling.
//!
//! The refined ranging service emits "a sequence of identical chirps
//! interspersed with intervals of silence", with "small random delays between
//! elements of the pattern" to decorrelate echoes (Section 3.5). The field
//! experiments used a constant 4.3 kHz tone in **8 ms chirps**, ten chirps
//! per sequence, sampled at **16 kHz** (Section 3.6).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{Result, SignalError, SPEED_OF_SOUND};

/// Configuration of one ranging chirp train.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChirpTrainConfig {
    /// Tone-detector sampling rate (Hz). The MICA service samples at 16 kHz.
    pub sampling_rate_hz: f64,
    /// Beacon tone frequency (Hz); 4.3 kHz in the paper.
    pub tone_hz: f64,
    /// Chirp duration in milliseconds (8 ms in the field experiments).
    pub chirp_ms: f64,
    /// Number of chirps accumulated per measurement (10 in the paper;
    /// the 4-bit accumulation buffer supports at most 15).
    pub n_chirps: usize,
    /// Nominal silence between chirps, milliseconds.
    pub gap_ms: f64,
    /// Uniform random extra delay added to each gap (echo decorrelation),
    /// milliseconds. Zero disables the paper's anti-echo randomization.
    pub gap_jitter_ms: f64,
    /// Time for the analog speaker to reach full output power,
    /// milliseconds. Chirps shorter than the ramp are poorly detected,
    /// which is why the paper settled on 8 ms.
    pub rampup_ms: f64,
    /// Maximum distance the receive buffer must cover, meters. Determines
    /// the buffer size (about 500 bytes of mote RAM at 20 m / 15 chirps).
    pub max_distance_m: f64,
}

impl ChirpTrainConfig {
    /// The configuration used in the paper's grass-field experiments.
    pub fn paper() -> Self {
        ChirpTrainConfig {
            sampling_rate_hz: 16_000.0,
            tone_hz: 4_300.0,
            chirp_ms: 8.0,
            n_chirps: 10,
            gap_ms: 60.0,
            gap_jitter_ms: 15.0,
            rampup_ms: 2.0,
            max_distance_m: 30.0,
        }
    }

    /// The baseline single-chirp configuration of Section 3.3 (one long
    /// chirp, no accumulation, no pattern).
    pub fn baseline() -> Self {
        ChirpTrainConfig {
            chirp_ms: 64.0,
            n_chirps: 1,
            gap_jitter_ms: 0.0,
            ..ChirpTrainConfig::paper()
        }
    }

    /// Chirp length in detector samples (rounded down, at least 1).
    pub fn chirp_samples(&self) -> usize {
        ((self.chirp_ms / 1_000.0 * self.sampling_rate_hz) as usize).max(1)
    }

    /// Speaker ramp-up length in detector samples.
    pub fn rampup_samples(&self) -> usize {
        (self.rampup_ms / 1_000.0 * self.sampling_rate_hz) as usize
    }

    /// Receive-buffer length in samples: sound flight time to
    /// `max_distance_m`, plus one chirp, plus detection-window slack.
    pub fn buffer_samples(&self) -> usize {
        let flight = self.max_distance_m / SPEED_OF_SOUND * self.sampling_rate_hz;
        flight.ceil() as usize + self.chirp_samples() + 64
    }

    /// Number of buffer samples corresponding to one meter of range.
    pub fn samples_per_meter(&self) -> f64 {
        self.sampling_rate_hz / SPEED_OF_SOUND
    }

    /// Converts a buffer sample index to meters of range.
    pub fn sample_to_meters(&self, sample: f64) -> f64 {
        sample / self.samples_per_meter()
    }

    /// Converts meters of range to a fractional buffer sample index.
    pub fn meters_to_sample(&self, meters: f64) -> f64 {
        meters * self.samples_per_meter()
    }

    /// Draws the randomized chirp start times for one train.
    pub fn schedule<R: Rng + ?Sized>(&self, rng: &mut R) -> ChirpTrainSchedule {
        let mut starts = Vec::with_capacity(self.n_chirps);
        let mut t = 0.0;
        let buffer_s = self.buffer_samples() as f64 / self.sampling_rate_hz;
        for _ in 0..self.n_chirps {
            starts.push(t);
            let jitter = if self.gap_jitter_ms > 0.0 {
                rng.random::<f64>() * self.gap_jitter_ms
            } else {
                0.0
            };
            // Next chirp begins after this chirp's listen window plus the
            // configured gap and its random extension.
            t += buffer_s + (self.gap_ms + jitter) / 1_000.0;
        }
        ChirpTrainSchedule { starts_s: starts }
    }

    /// Validates parameter domains.
    ///
    /// # Errors
    ///
    /// Returns [`SignalError::InvalidConfig`] naming the first violated
    /// constraint.
    pub fn validate(&self) -> Result<()> {
        if !(self.sampling_rate_hz > 0.0) {
            return Err(SignalError::InvalidConfig(
                "sampling_rate_hz must be positive",
            ));
        }
        if !(self.tone_hz > 0.0) || self.tone_hz * 2.0 > self.sampling_rate_hz {
            return Err(SignalError::InvalidConfig(
                "tone_hz must be positive and below Nyquist",
            ));
        }
        if !(self.chirp_ms > 0.0) {
            return Err(SignalError::InvalidConfig("chirp_ms must be positive"));
        }
        if self.n_chirps == 0 || self.n_chirps > 15 {
            return Err(SignalError::InvalidConfig(
                "n_chirps must be in 1..=15 (4-bit accumulation)",
            ));
        }
        if self.gap_ms < 0.0 || self.gap_jitter_ms < 0.0 {
            return Err(SignalError::InvalidConfig("gaps must be non-negative"));
        }
        if self.rampup_ms < 0.0 {
            return Err(SignalError::InvalidConfig("rampup_ms must be non-negative"));
        }
        if !(self.max_distance_m > 0.0) {
            return Err(SignalError::InvalidConfig(
                "max_distance_m must be positive",
            ));
        }
        Ok(())
    }

    /// Approximate mote RAM usage of the accumulation buffer in bytes
    /// (4 bits per sample, as in the paper's Section 3.6.2 analysis).
    pub fn buffer_ram_bytes(&self) -> usize {
        self.buffer_samples().div_ceil(2)
    }
}

impl Default for ChirpTrainConfig {
    fn default() -> Self {
        ChirpTrainConfig::paper()
    }
}

/// Concrete start times of the chirps of one train, seconds from the first
/// radio sync message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChirpTrainSchedule {
    /// Start time of each chirp, seconds.
    pub starts_s: Vec<f64>,
}

impl ChirpTrainSchedule {
    /// Gap between consecutive chirp starts, seconds.
    pub fn gaps(&self) -> Vec<f64> {
        self.starts_s.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// Number of chirps in the schedule.
    pub fn len(&self) -> usize {
        self.starts_s.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.starts_s.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl_math::rng::seeded;

    #[test]
    fn paper_config_is_valid_and_matches_text() {
        let c = ChirpTrainConfig::paper();
        c.validate().unwrap();
        assert_eq!(c.chirp_samples(), 128); // 8 ms at 16 kHz
        assert_eq!(c.n_chirps, 10);
        assert!((c.samples_per_meter() - 16_000.0 / 340.0).abs() < 1e-9);
    }

    #[test]
    fn baseline_config_has_long_single_chirp() {
        let c = ChirpTrainConfig::baseline();
        c.validate().unwrap();
        assert_eq!(c.n_chirps, 1);
        assert_eq!(c.chirp_samples(), 1024); // 64 ms at 16 kHz
    }

    #[test]
    fn buffer_covers_max_distance() {
        let c = ChirpTrainConfig::paper();
        let needed = c.meters_to_sample(c.max_distance_m);
        assert!(c.buffer_samples() as f64 >= needed);
    }

    #[test]
    fn buffer_ram_matches_paper_budget() {
        // Paper: "For 15 samples at distances up to 20 m, the service uses
        // less than 500 bytes of RAM" (4 bits per offset).
        let c = ChirpTrainConfig {
            max_distance_m: 20.0,
            n_chirps: 15,
            ..ChirpTrainConfig::paper()
        };
        assert!(
            c.buffer_ram_bytes() < 600,
            "buffer uses {} bytes",
            c.buffer_ram_bytes()
        );
    }

    #[test]
    fn sample_meter_roundtrip() {
        let c = ChirpTrainConfig::paper();
        let d = 17.3;
        assert!((c.sample_to_meters(c.meters_to_sample(d)) - d).abs() < 1e-12);
    }

    #[test]
    fn schedule_is_monotone_with_jittered_gaps() {
        let c = ChirpTrainConfig::paper();
        let mut rng = seeded(11);
        let s = c.schedule(&mut rng);
        assert_eq!(s.len(), 10);
        assert!(!s.is_empty());
        let gaps = s.gaps();
        let min_gap = c.buffer_samples() as f64 / c.sampling_rate_hz + c.gap_ms / 1_000.0;
        for g in &gaps {
            assert!(*g >= min_gap - 1e-12);
            assert!(*g <= min_gap + c.gap_jitter_ms / 1_000.0 + 1e-12);
        }
        // Jitter actually varies the gaps.
        let spread = gaps.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - gaps.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            spread > 1e-4,
            "gap jitter should vary gaps, spread {spread}"
        );
    }

    #[test]
    fn schedule_without_jitter_is_regular() {
        let c = ChirpTrainConfig {
            gap_jitter_ms: 0.0,
            ..ChirpTrainConfig::paper()
        };
        let mut rng = seeded(12);
        let gaps = c.schedule(&mut rng).gaps();
        for w in gaps.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-12);
        }
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let ok = ChirpTrainConfig::paper();
        for (field, cfg) in [
            (
                "fs",
                ChirpTrainConfig {
                    sampling_rate_hz: 0.0,
                    ..ok.clone()
                },
            ),
            (
                "nyquist",
                ChirpTrainConfig {
                    tone_hz: 9_000.0,
                    ..ok.clone()
                },
            ),
            (
                "chirp",
                ChirpTrainConfig {
                    chirp_ms: 0.0,
                    ..ok.clone()
                },
            ),
            (
                "chirps0",
                ChirpTrainConfig {
                    n_chirps: 0,
                    ..ok.clone()
                },
            ),
            (
                "chirps16",
                ChirpTrainConfig {
                    n_chirps: 16,
                    ..ok.clone()
                },
            ),
            (
                "gap",
                ChirpTrainConfig {
                    gap_ms: -1.0,
                    ..ok.clone()
                },
            ),
            (
                "dist",
                ChirpTrainConfig {
                    max_distance_m: 0.0,
                    ..ok.clone()
                },
            ),
        ] {
            assert!(cfg.validate().is_err(), "{field} should be rejected");
        }
    }

    #[test]
    fn serde_roundtrip() {
        let c = ChirpTrainConfig::paper();
        let json = serde_json::to_string(&c).unwrap();
        assert_eq!(serde_json::from_str::<ChirpTrainConfig>(&json).unwrap(), c);
    }
}
