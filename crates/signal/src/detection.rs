//! The `record-signal` / `detect-signal` routines of Figure 3.
//!
//! The refined ranging service improves detection confidence by adding the
//! binary tone-detector outputs of several chirps "in a manner which
//! amplifies tone detections occurring in the same positions in multiple
//! attempts", then applying two-level threshold detection: an accumulated
//! sample counts as *positive* when its count reaches the threshold `T`, and
//! a chirp is recognized at the first window of `m` consecutive samples
//! containing at least `k` positives whose first sample is itself positive.
//!
//! The pseudocode of Figure 3 is reproduced here with two clarifications
//! documented inline: indices are zero-based, and the returned index is the
//! start of the qualifying window (the paper's 1-based `i - m` is the sample
//! immediately before its window `[i-m+1, i]`; the window start is the
//! detected signal onset).

use serde::{Deserialize, Serialize};

/// Parameters of the two-level threshold detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetectionParams {
    /// Accumulation threshold `T`: an offset is positive when at least this
    /// many chirps produced a detector hit there.
    pub threshold: u8,
    /// Window length `m` in samples.
    pub window: usize,
    /// Required positives `k` within the window.
    pub required: usize,
}

impl DetectionParams {
    /// The parameters calibrated for the paper's grass-field experiments:
    /// "the sum of the binary tone detection outputs from the 10 chirps must
    /// exceed the threshold value of 2 for in least 6 of 32 consecutive
    /// samples" (Section 3.6).
    pub fn paper() -> Self {
        DetectionParams {
            threshold: 2,
            window: 32,
            required: 6,
        }
    }

    /// The most permissive setting used in the maximum-range study of
    /// Section 3.6.2 ("the lowest detection threshold (i.e., 1)").
    pub fn lowest() -> Self {
        DetectionParams {
            threshold: 1,
            window: 32,
            required: 6,
        }
    }

    /// Validates parameter domains.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SignalError::InvalidConfig`] if `window` or
    /// `required` is zero, or `required > window`, or `threshold` is zero.
    pub fn validate(&self) -> crate::Result<()> {
        use crate::SignalError::InvalidConfig;
        if self.threshold == 0 {
            return Err(InvalidConfig("threshold must be at least 1"));
        }
        if self.window == 0 {
            return Err(InvalidConfig("window must be non-empty"));
        }
        if self.required == 0 || self.required > self.window {
            return Err(InvalidConfig("required must be in 1..=window"));
        }
        Ok(())
    }
}

impl Default for DetectionParams {
    fn default() -> Self {
        DetectionParams::paper()
    }
}

/// Figure 3's `record-signal`: adds one chirp's binary detector output into
/// the accumulation buffer, saturating at 15 (the mote stores 4 bits per
/// offset).
///
/// # Panics
///
/// Panics if the buffers differ in length.
pub fn record_signal(accumulated: &mut [u8], chirp_hits: &[bool]) {
    assert_eq!(
        accumulated.len(),
        chirp_hits.len(),
        "accumulation buffer and chirp buffer must have equal length"
    );
    for (acc, &hit) in accumulated.iter_mut().zip(chirp_hits) {
        if hit && *acc < 15 {
            *acc += 1;
        }
    }
}

/// Figure 3's `detect-signal`: returns the index of the first sample of the
/// first window of `params.window` consecutive samples that contains at
/// least `params.required` positives (accumulated count `>= threshold`) and
/// whose first sample is positive. Returns `None` when no window qualifies
/// or the buffer is shorter than the window.
///
/// # Example
///
/// ```
/// use rl_signal::detection::{detect_signal, DetectionParams};
///
/// let mut buf = vec![0u8; 64];
/// for i in 40..52 { buf[i] = 5; } // a strong accumulated signal at 40
/// let params = DetectionParams { threshold: 2, window: 8, required: 4 };
/// assert_eq!(detect_signal(&buf, &params), Some(40));
/// ```
pub fn detect_signal(accumulated: &[u8], params: &DetectionParams) -> Option<usize> {
    params.validate().ok()?;
    let m = params.window;
    if accumulated.len() < m {
        return None;
    }
    let positive = |i: usize| accumulated[i] >= params.threshold;

    // Prime the count over the first window [0, m).
    let mut count = (0..m).filter(|&i| positive(i)).count();
    if count >= params.required && positive(0) {
        return Some(0);
    }
    // Slide: window [start, start + m).
    for start in 1..=(accumulated.len() - m) {
        if positive(start - 1) {
            count -= 1;
        }
        if positive(start + m - 1) {
            count += 1;
        }
        if count >= params.required && positive(start) {
            return Some(start);
        }
    }
    None
}

/// Applies `detect-signal` at every threshold from `hi` down to 1 and
/// returns the most confident detection: the result at the highest
/// threshold that yields one.
///
/// This mirrors how the service can trade false positives against false
/// negatives by threshold choice (Section 3.6), preferring stricter
/// evidence when available.
pub fn detect_signal_adaptive(accumulated: &[u8], base: &DetectionParams) -> Option<usize> {
    for threshold in (1..=base.threshold).rev() {
        let params = DetectionParams { threshold, ..*base };
        if let Some(idx) = detect_signal(accumulated, &params) {
            return Some(idx);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn record_signal_accumulates_and_saturates() {
        let mut acc = vec![0u8; 4];
        let hits = [true, false, true, false];
        for _ in 0..20 {
            record_signal(&mut acc, &hits);
        }
        assert_eq!(acc, vec![15, 0, 15, 0], "must saturate at 4 bits");
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn record_signal_length_mismatch_panics() {
        let mut acc = vec![0u8; 4];
        record_signal(&mut acc, &[true; 3]);
    }

    #[test]
    fn detects_clean_signal_at_onset() {
        let mut buf = vec![0u8; 200];
        for v in buf.iter_mut().skip(100).take(30) {
            *v = 8;
        }
        assert_eq!(detect_signal(&buf, &DetectionParams::paper()), Some(100));
    }

    #[test]
    fn ignores_single_spikes() {
        let mut buf = vec![0u8; 200];
        buf[50] = 15; // one lone strong spike
        buf[90] = 3;
        assert_eq!(detect_signal(&buf, &DetectionParams::paper()), None);
    }

    #[test]
    fn requires_window_start_positive() {
        // Enough positives in the window, but scattered after a zero start:
        // detection snaps to the first positive sample of a dense region.
        let mut buf = vec![0u8; 100];
        for v in buf.iter_mut().skip(41).take(20) {
            *v = 4;
        }
        let p = DetectionParams {
            threshold: 2,
            window: 16,
            required: 6,
        };
        // Windows starting at 26..=40 contain >= 6 positives only once they
        // include enough of the signal; the first *qualifying* window must
        // start on a positive sample, i.e. at 41.
        assert_eq!(detect_signal(&buf, &p), Some(41));
    }

    #[test]
    fn detects_weak_signal_over_threshold() {
        let mut buf = vec![0u8; 120];
        // Alternating weak accumulation (simulates distance attenuation).
        for i in (60..100).step_by(3) {
            buf[i] = 2;
        }
        let p = DetectionParams {
            threshold: 2,
            window: 32,
            required: 6,
        };
        assert_eq!(detect_signal(&buf, &p), Some(60));
        // A stricter threshold misses it entirely.
        let strict = DetectionParams { threshold: 3, ..p };
        assert_eq!(detect_signal(&buf, &strict), None);
    }

    #[test]
    fn short_buffer_returns_none() {
        let buf = vec![5u8; 10];
        assert_eq!(detect_signal(&buf, &DetectionParams::paper()), None);
    }

    #[test]
    fn invalid_params_return_none() {
        let buf = vec![5u8; 100];
        let zero_threshold = DetectionParams {
            threshold: 0,
            window: 8,
            required: 4,
        };
        assert_eq!(detect_signal(&buf, &zero_threshold), None);
        let bad_required = DetectionParams {
            threshold: 1,
            window: 8,
            required: 9,
        };
        assert_eq!(detect_signal(&buf, &bad_required), None);
        assert!(zero_threshold.validate().is_err());
        assert!(bad_required.validate().is_err());
        assert!(DetectionParams::paper().validate().is_ok());
        assert!(DetectionParams::lowest().validate().is_ok());
    }

    #[test]
    fn detection_at_buffer_start_and_end() {
        let p = DetectionParams {
            threshold: 1,
            window: 4,
            required: 3,
        };
        let start = [1u8, 1, 1, 0, 0, 0, 0, 0];
        assert_eq!(detect_signal(&start, &p), Some(0));
        let end = [0u8, 0, 0, 0, 1, 1, 1, 1];
        assert_eq!(detect_signal(&end, &p), Some(4));
    }

    #[test]
    fn adaptive_prefers_high_threshold() {
        let mut buf = vec![0u8; 100];
        // Weak noise region at 10 (accumulation 1), strong signal at 60.
        buf[10..20].fill(1);
        buf[60..80].fill(6);
        let base = DetectionParams {
            threshold: 3,
            window: 8,
            required: 5,
        };
        // Plain detection at threshold 3 finds the signal; adaptive should
        // agree (highest threshold first), not fall back to the noise.
        assert_eq!(detect_signal_adaptive(&buf, &base), Some(60));
        // With only the weak region present, adaptive falls back to T=1.
        let mut weak = vec![0u8; 100];
        weak[30..40].fill(1);
        assert_eq!(detect_signal(&weak, &base), None);
        assert_eq!(detect_signal_adaptive(&weak, &base), Some(30));
    }

    proptest! {
        /// The detected index is always a positive sample and its window
        /// really contains `required` positives.
        #[test]
        fn prop_detection_invariants(
            buf in proptest::collection::vec(0u8..8, 40..300),
            threshold in 1u8..4,
            window in 4usize..32,
            required in 1usize..16,
        ) {
            prop_assume!(required <= window);
            let params = DetectionParams { threshold, window, required };
            if let Some(idx) = detect_signal(&buf, &params) {
                prop_assert!(buf[idx] >= threshold);
                prop_assert!(idx + window <= buf.len());
                let positives = buf[idx..idx + window]
                    .iter()
                    .filter(|&&v| v >= threshold)
                    .count();
                prop_assert!(positives >= required);
                // No earlier qualifying window exists.
                for earlier in 0..idx {
                    if buf[earlier] >= threshold && earlier + window <= buf.len() {
                        let c = buf[earlier..earlier + window]
                            .iter()
                            .filter(|&&v| v >= threshold)
                            .count();
                        prop_assert!(c < required, "earlier window at {earlier} qualifies");
                    }
                }
            }
        }

        /// Accumulation never decreases counts and is order-independent.
        #[test]
        fn prop_record_signal_monotone(
            hits1 in proptest::collection::vec(proptest::bool::ANY, 64),
            hits2 in proptest::collection::vec(proptest::bool::ANY, 64),
        ) {
            let mut a = vec![0u8; 64];
            record_signal(&mut a, &hits1);
            let snapshot = a.clone();
            record_signal(&mut a, &hits2);
            for (before, after) in snapshot.iter().zip(&a) {
                prop_assert!(after >= before);
            }
            // Order independence.
            let mut b = vec![0u8; 64];
            record_signal(&mut b, &hits2);
            record_signal(&mut b, &hits1);
            prop_assert_eq!(a, b);
        }
    }
}
