//! Stochastic tone-detector and reception simulation.
//!
//! The MICA sensor board's hardware phase-locked-loop tone detector outputs
//! a binary value per sample. Section 3.5 models it as a binary time series
//! `b(t)` with `P[b(t)=1 | signal present] ≫ P[b(t)=1 | no signal]`; that
//! model is what this module simulates, sample by sample, for a receiver at
//! a given distance from the chirping node.
//!
//! The simulation reproduces every error source of Section 3.4:
//!
//! 1. **timing effects** — integer sampling plus per-chirp Gaussian jitter,
//! 2. **non-deterministic acoustic delays** — speaker ramp-up attenuating
//!    the first milliseconds of each chirp (late detection ⇒ overestimate),
//! 3. **unit-to-unit variation** — per-pair sensitivity and delay offsets,
//!    with occasional faulty hardware,
//! 4. **signal attenuation** — the environment's distance-dependent hit
//!    probability,
//! 5. **noise** — ambient false positives plus discrete noise bursts,
//! 6. **echoes** — same-chirp delayed copies and stale reverberation from
//!    earlier chirps; stale echoes land at a *fixed* buffer offset when the
//!    inter-chirp gaps are regular and at *decorrelated* offsets when the
//!    paper's random gap jitter is enabled,
//! 7. **unreliable tone detection** — everything is Bernoulli, never exact.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::chirp::ChirpTrainConfig;
use crate::detection::{detect_signal, record_signal, DetectionParams};
use crate::env::AcousticProfile;

/// Per speaker–microphone-pair hardware variation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeAcoustics {
    /// Multiplicative sensitivity of this pair (1.0 = nominal). Models the
    /// ±3 dB microphone and up-to-5 dB loudspeaker variation of
    /// Section 3.6.2.
    pub sensitivity: f64,
    /// Constant per-pair detection-delay offset in samples (actuation and
    /// sensing delays differing between units).
    pub delay_offset_samples: f64,
    /// Whether this pair suffers from faulty hardware / persistent
    /// wide-band self-noise. Faulty pairs produce correlated phantom
    /// detections that only consistency checking can remove.
    pub faulty: bool,
    /// Buffer position of the faulty pair's phantom window, as a fraction
    /// of the buffer length. Fixed per pair so the error is *correlated
    /// across rounds* (median filtering cannot remove it; the
    /// bidirectional consistency check can).
    pub phantom_fraction: f64,
}

impl NodeAcoustics {
    /// A nominal, fault-free pair.
    pub fn nominal() -> Self {
        NodeAcoustics {
            sensitivity: 1.0,
            delay_offset_samples: 0.0,
            faulty: false,
            phantom_fraction: 0.5,
        }
    }

    /// Draws a random pair from the variation model.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R, model: &VariationModel) -> Self {
        let sensitivity = (rl_math::rng::normal(rng, 0.0, model.sensitivity_sigma)).exp();
        let delay_offset_samples = rl_math::rng::normal(rng, 0.0, model.delay_sigma_samples);
        let faulty = rng.random::<f64>() < model.faulty_probability;
        NodeAcoustics {
            sensitivity,
            delay_offset_samples,
            faulty,
            phantom_fraction: rng.random::<f64>(),
        }
    }
}

impl Default for NodeAcoustics {
    fn default() -> Self {
        NodeAcoustics::nominal()
    }
}

/// Distribution parameters for [`NodeAcoustics::sample`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariationModel {
    /// Log-normal sigma of the sensitivity multiplier.
    pub sensitivity_sigma: f64,
    /// Gaussian sigma of the per-pair delay offset, in samples.
    pub delay_sigma_samples: f64,
    /// Probability that a pair behaves as faulty hardware.
    pub faulty_probability: f64,
    /// Per-sample hit probability of the faulty pair's phantom window.
    pub phantom_hit_probability: f64,
}

impl Default for VariationModel {
    fn default() -> Self {
        VariationModel {
            sensitivity_sigma: 0.15,
            delay_sigma_samples: 5.0,
            faulty_probability: 0.03,
            phantom_hit_probability: 0.45,
        }
    }
}

/// Simulates the reception of a chirp train at a given true distance.
#[derive(Debug, Clone)]
pub struct ReceptionSimulator {
    profile: AcousticProfile,
    config: ChirpTrainConfig,
    variation: VariationModel,
}

impl ReceptionSimulator {
    /// Creates a simulator for an environment and chirp configuration.
    ///
    /// # Panics
    ///
    /// Panics if either the profile or the configuration fails validation;
    /// both come from presets or caller-constructed values that should have
    /// been validated first.
    pub fn new(profile: AcousticProfile, config: ChirpTrainConfig) -> Self {
        profile.validate().expect("invalid acoustic profile");
        config.validate().expect("invalid chirp configuration");
        ReceptionSimulator {
            profile,
            config,
            variation: VariationModel::default(),
        }
    }

    /// Replaces the hardware variation model (builder style).
    pub fn with_variation(mut self, variation: VariationModel) -> Self {
        self.variation = variation;
        self
    }

    /// The chirp configuration in use.
    pub fn config(&self) -> &ChirpTrainConfig {
        &self.config
    }

    /// The acoustic profile in use.
    pub fn profile(&self) -> &AcousticProfile {
        &self.profile
    }

    /// Simulates one full chirp-train reception for a freshly sampled
    /// hardware pair.
    pub fn receive<R: Rng + ?Sized>(&self, distance_m: f64, rng: &mut R) -> ReceptionOutcome {
        let pair = NodeAcoustics::sample(rng, &self.variation);
        self.receive_with(distance_m, &pair, rng)
    }

    /// Simulates one full chirp-train reception for a specific hardware
    /// pair (used when the same pair measures repeatedly).
    ///
    /// # Panics
    ///
    /// Panics if `distance_m` is negative or not finite.
    pub fn receive_with<R: Rng + ?Sized>(
        &self,
        distance_m: f64,
        pair: &NodeAcoustics,
        rng: &mut R,
    ) -> ReceptionOutcome {
        assert!(
            distance_m.is_finite() && distance_m >= 0.0,
            "distance must be finite and non-negative, got {distance_m}"
        );
        let cfg = &self.config;
        let bufn = cfg.buffer_samples();
        let chirp_len = cfg.chirp_samples();
        let ramp = cfg.rampup_samples().max(1);
        let true_start = cfg.meters_to_sample(distance_m);
        let s0 = true_start + pair.delay_offset_samples;

        // Per-pair echo geometry, fixed for the whole train.
        let has_echo = rng.random::<f64>() < self.profile.echo_probability;
        let echo_delay_samples = if has_echo {
            let (lo, hi) = self.profile.echo_extra_path;
            cfg.meters_to_sample(lo + (hi - lo) * rng.random::<f64>())
        } else {
            0.0
        };
        // Stale reverberation offset used when gaps are regular: the
        // multi-bounce geometry repeats, so the tail lands at the same
        // buffer position every chirp.
        let stale_offset_fixed = (rng.random::<f64>() * bufn as f64) as usize;
        let has_stale = has_echo && rng.random::<f64>() < 0.5;
        // Faulty pairs carry a phantom self-noise window at a per-pair
        // fixed offset (correlated across rounds).
        let phantom_offset = (pair.phantom_fraction.clamp(0.0, 0.999) * bufn as f64) as usize;

        let p_direct =
            self.profile.p_hit(distance_m, pair.sensitivity) * if pair.faulty { 0.5 } else { 1.0 };

        let mut accumulated = vec![0u8; bufn];
        let mut first_chirp_hits = vec![false; bufn];

        let mut hits = vec![false; bufn];
        for chirp_idx in 0..cfg.n_chirps {
            hits.iter_mut().for_each(|h| *h = false);
            let jitter = rl_math::rng::normal(rng, 0.0, 2.0);
            let start = s0 + jitter;

            // Direct path with speaker ramp-up.
            paint_window(&mut hits, start, chirp_len, rng, |j| {
                let rampf = ((j + 1) as f64 / ramp as f64).min(1.0);
                p_direct * rampf
            });

            // Same-chirp echo: delayed, attenuated copy.
            if has_echo {
                let p_echo = p_direct * self.profile.echo_strength;
                paint_window(&mut hits, start + echo_delay_samples, chirp_len, rng, |j| {
                    let rampf = ((j + 1) as f64 / ramp as f64).min(1.0);
                    p_echo * rampf
                });
            }

            // Stale reverberation from earlier chirps. With the paper's
            // random gap jitter the tail decorrelates across chirps; with
            // regular gaps it repeats at a fixed offset.
            if has_stale && chirp_idx > 0 {
                let offset = if cfg.gap_jitter_ms > 0.0 {
                    (rng.random::<f64>() * bufn as f64) as usize
                } else {
                    stale_offset_fixed
                };
                // The reverberant tail is much weaker than the direct path:
                // weak enough that decorrelated (jittered) tails cannot
                // accumulate to the detection threshold, but a tail repeating
                // at a fixed offset across chirps can.
                let p_stale =
                    self.profile.p_hit(0.0, pair.sensitivity) * self.profile.echo_strength * 0.35;
                paint_window(&mut hits, offset as f64, chirp_len, rng, |_| p_stale);
            }

            // Faulty-hardware phantom window, correlated across chirps.
            if pair.faulty {
                paint_window(&mut hits, phantom_offset as f64, chirp_len, rng, |_| {
                    self.variation.phantom_hit_probability
                });
            }

            // Ambient noise, every sample.
            for h in hits.iter_mut() {
                if rng.random::<f64>() < self.profile.noise_rate {
                    *h = true;
                }
            }

            // Discrete noise bursts: Poisson arrivals over the window.
            let window_s = bufn as f64 / cfg.sampling_rate_hz;
            if self.profile.burst_rate_hz > 0.0 {
                let mut t = exponential(rng, self.profile.burst_rate_hz);
                while t < window_s {
                    let burst_start = t * cfg.sampling_rate_hz;
                    paint_window(
                        &mut hits,
                        burst_start,
                        self.profile.burst_len_samples,
                        rng,
                        |_| self.profile.burst_hit_probability,
                    );
                    t += exponential(rng, self.profile.burst_rate_hz);
                }
            }

            if chirp_idx == 0 {
                first_chirp_hits.copy_from_slice(&hits);
            }
            record_signal(&mut accumulated, &hits);
        }

        ReceptionOutcome {
            accumulated,
            first_chirp_hits,
            true_start,
            config: cfg.clone(),
            pair: pair.clone(),
            had_echo: has_echo,
        }
    }
}

/// Bernoulli-paints `len` samples starting at fractional index `start` using
/// a per-offset probability function.
fn paint_window<R: Rng + ?Sized>(
    hits: &mut [bool],
    start: f64,
    len: usize,
    rng: &mut R,
    p_at: impl Fn(usize) -> f64,
) {
    let base = start.round() as i64;
    for j in 0..len {
        let idx = base + j as i64;
        if idx < 0 || idx as usize >= hits.len() {
            continue;
        }
        let p = p_at(j);
        if p > 0.0 && rng.random::<f64>() < p {
            hits[idx as usize] = true;
        }
    }
}

/// Exponential deviate with the given rate (events per second).
fn exponential<R: Rng + ?Sized>(rng: &mut R, rate_hz: f64) -> f64 {
    let u: f64 = 1.0 - rng.random::<f64>();
    -u.ln() / rate_hz
}

/// The receiver-side product of one simulated chirp train.
#[derive(Debug, Clone)]
pub struct ReceptionOutcome {
    /// Accumulated detector counts per buffer offset (4-bit saturating, as
    /// on the mote).
    pub accumulated: Vec<u8>,
    /// Raw binary detector output of the first chirp only (what the
    /// baseline single-chirp service sees).
    pub first_chirp_hits: Vec<bool>,
    /// Ground-truth direct-path arrival, fractional samples (geometry only,
    /// excluding hardware delay offsets).
    pub true_start: f64,
    /// Chirp configuration used.
    pub config: ChirpTrainConfig,
    /// The hardware pair that produced this reception.
    pub pair: NodeAcoustics,
    /// Whether an echo path existed for this pair.
    pub had_echo: bool,
}

impl ReceptionOutcome {
    /// Runs the Figure-3 detector with explicit parameters; returns the
    /// detected signal-start sample.
    pub fn detect(&self, params: &DetectionParams) -> Option<usize> {
        detect_signal(&self.accumulated, params)
    }

    /// Runs the Figure-3 detector with the paper's calibrated parameters
    /// (threshold 2, at least 6 of 32 consecutive samples).
    pub fn detect_default(&self) -> Option<usize> {
        self.detect(&DetectionParams::paper())
    }

    /// Baseline detection: the first sample where the hardware detector
    /// fired during the first chirp (Section 3.3's unreliable scheme).
    pub fn baseline_first_hit(&self) -> Option<usize> {
        self.first_chirp_hits.iter().position(|&h| h)
    }

    /// Signed detection error in samples for a detected index.
    pub fn error_samples(&self, detected: usize) -> f64 {
        detected as f64 - self.true_start
    }

    /// Signed detection error in meters for a detected index.
    pub fn error_meters(&self, detected: usize) -> f64 {
        self.config.sample_to_meters(self.error_samples(detected))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::Environment;
    use rl_math::rng::seeded;

    fn grass_sim() -> ReceptionSimulator {
        ReceptionSimulator::new(Environment::Grass.profile(), ChirpTrainConfig::paper())
    }

    #[test]
    fn close_range_is_reliably_detected() {
        let sim = grass_sim();
        let mut rng = seeded(100);
        let mut detections = 0;
        let mut errors = Vec::new();
        for _ in 0..60 {
            let out = sim.receive(8.0, &mut rng);
            if let Some(idx) = out.detect_default() {
                detections += 1;
                errors.push(out.error_meters(idx));
            }
        }
        assert!(detections >= 54, "8 m on grass: {detections}/60 detections");
        // Median error magnitude should be decimeter-scale before
        // calibration (constant positive bias is removed by delta_const).
        let med = rl_math::stats::median_of(&errors).unwrap();
        assert!(med.abs() < 0.6, "median raw error {med} m");
    }

    #[test]
    fn beyond_hard_range_is_never_detected_directly() {
        let sim = grass_sim();
        let mut rng = seeded(101);
        let mut detections = 0;
        for _ in 0..40 {
            let out = sim.receive(26.0, &mut rng);
            // Any detection here is a false positive (noise/echo), and the
            // resulting "distance" is unrelated to 26 m.
            if out.detect_default().is_some() {
                detections += 1;
            }
        }
        assert!(
            detections <= 6,
            "26 m on grass: {detections}/40 false detections"
        );
    }

    #[test]
    fn detection_rate_decreases_with_distance() {
        let sim = grass_sim();
        let mut rng = seeded(102);
        let rate = |d: f64, rng: &mut rand::rngs::StdRng| {
            let mut n = 0;
            for _ in 0..40 {
                if sim.receive(d, rng).detect_default().is_some() {
                    n += 1;
                }
            }
            n
        };
        let near = rate(6.0, &mut rng);
        let mid = rate(14.0, &mut rng);
        let far = rate(21.0, &mut rng);
        assert!(
            near >= mid && mid >= far,
            "rates {near} {mid} {far} not monotone"
        );
        assert!(near >= 36);
        assert!(far <= 20);
    }

    #[test]
    fn pavement_outranges_grass() {
        let mut rng = seeded(103);
        let grass = grass_sim();
        let pave = ReceptionSimulator::new(
            Environment::Pavement.profile(),
            ChirpTrainConfig {
                max_distance_m: 45.0,
                ..ChirpTrainConfig::paper()
            },
        );
        let mut g = 0;
        let mut p = 0;
        for _ in 0..40 {
            if grass.receive(18.0, &mut rng).detect_default().is_some() {
                g += 1;
            }
            if pave.receive(18.0, &mut rng).detect_default().is_some() {
                p += 1;
            }
        }
        assert!(p > g, "pavement {p} vs grass {g} detections at 18 m");
    }

    #[test]
    fn deterministic_given_seed() {
        let sim = grass_sim();
        let out1 = sim.receive(10.0, &mut seeded(7));
        let out2 = sim.receive(10.0, &mut seeded(7));
        assert_eq!(out1.accumulated, out2.accumulated);
        assert_eq!(out1.detect_default(), out2.detect_default());
    }

    #[test]
    fn faulty_pair_can_produce_gross_errors() {
        let sim = grass_sim();
        let mut rng = seeded(104);
        let faulty = NodeAcoustics {
            sensitivity: 1.0,
            delay_offset_samples: 0.0,
            faulty: true,
            phantom_fraction: 0.23,
        };
        let mut gross = 0;
        for _ in 0..60 {
            let out = sim.receive_with(15.0, &faulty, &mut rng);
            if let Some(idx) = out.detect_default() {
                if out.error_meters(idx).abs() > 1.0 {
                    gross += 1;
                }
            }
        }
        assert!(
            gross >= 10,
            "faulty hardware produced only {gross} gross errors"
        );
    }

    #[test]
    fn regular_gaps_make_stale_echoes_correlated() {
        // Force echo-rich environment and compare underestimate rates with
        // and without the paper's random gap jitter.
        let mut profile = Environment::Urban.profile();
        profile.echo_probability = 1.0;
        let jittered = ReceptionSimulator::new(profile.clone(), ChirpTrainConfig::paper());
        let regular = ReceptionSimulator::new(
            profile,
            ChirpTrainConfig {
                gap_jitter_ms: 0.0,
                ..ChirpTrainConfig::paper()
            },
        );
        let count_under = |sim: &ReceptionSimulator, seed: u64| {
            let mut rng = seeded(seed);
            let mut under = 0;
            for _ in 0..150 {
                let out = sim.receive(20.0, &mut rng);
                if let Some(idx) = out.detect_default() {
                    if out.error_meters(idx) < -1.0 {
                        under += 1;
                    }
                }
            }
            under
        };
        let under_jittered = count_under(&jittered, 105);
        let under_regular = count_under(&regular, 105);
        assert!(
            under_regular > under_jittered,
            "regular gaps should underestimate more: {under_regular} vs {under_jittered}"
        );
    }

    #[test]
    fn baseline_first_hit_is_noisier_than_refined() {
        let profile = Environment::Urban.profile();
        let sim = ReceptionSimulator::new(profile, ChirpTrainConfig::paper());
        let mut rng = seeded(106);
        let mut baseline_gross = 0;
        let mut refined_gross = 0;
        let mut n = 0;
        for _ in 0..120 {
            let out = sim.receive(15.0, &mut rng);
            let (Some(b), Some(r)) = (out.baseline_first_hit(), out.detect_default()) else {
                continue;
            };
            n += 1;
            if out.error_meters(b).abs() > 1.0 {
                baseline_gross += 1;
            }
            if out.error_meters(r).abs() > 1.0 {
                refined_gross += 1;
            }
        }
        assert!(n > 40, "too few joint detections: {n}");
        assert!(
            baseline_gross > refined_gross,
            "baseline {baseline_gross} vs refined {refined_gross} gross errors over {n}"
        );
    }

    #[test]
    #[should_panic(expected = "distance must be finite")]
    fn negative_distance_panics() {
        let sim = grass_sim();
        let _ = sim.receive(-1.0, &mut seeded(0));
    }

    #[test]
    fn nominal_default_pair() {
        let p = NodeAcoustics::default();
        assert_eq!(p.sensitivity, 1.0);
        assert!(!p.faulty);
    }

    #[test]
    fn variation_model_produces_spread() {
        let mut rng = seeded(107);
        let model = VariationModel::default();
        let pairs: Vec<NodeAcoustics> = (0..300)
            .map(|_| NodeAcoustics::sample(&mut rng, &model))
            .collect();
        let sens: Vec<f64> = pairs.iter().map(|p| p.sensitivity).collect();
        let sd = rl_math::stats::std_dev(&sens).unwrap();
        assert!(sd > 0.05, "sensitivity spread {sd}");
        let faulty = pairs.iter().filter(|p| p.faulty).count();
        assert!(faulty > 0 && faulty < 40, "faulty count {faulty}");
    }
}
