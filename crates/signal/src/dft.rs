//! The XSM software tone detector of Figure 9: a 36-sample sliding DFT.
//!
//! Platforms without the MICA hardware tone detector (e.g. Crossbow's XSM
//! mote) sample the microphone directly. The paper's filter maintains a
//! circular buffer of 36 raw samples and incrementally updates the DFT
//! coefficients of two beacon bands — `fs/4` and `fs/6` — chosen "to
//! minimize the need for numerical calculations when multiplying the samples
//! by the complex roots of unity": the `fs/4` coefficients are
//! `{1, 0, −1, 0}` and the `fs/6` ones `{2, 1, −1, −2, −1, 1}` (real) and
//! `{0, 1, 1, 0, −1, −1}` (imaginary).
//!
//! For noise rejection the paper suggests isolating the noise amplitude and
//! subtracting it from the DFT output; [`XsmToneDetector`] implements that
//! with a running broadband-energy estimate.

use serde::{Deserialize, Serialize};

/// Window length of the sliding DFT (a common multiple of 4 and 6).
pub const WINDOW: usize = 36;

/// Band amplitudes returned by one [`XsmFilter::filter`] step.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct BandAmplitudes {
    /// Squared amplitude of the `fs/4` band: `re4² + im4²`.
    pub quarter: f64,
    /// Squared amplitude of the `fs/6` band: `(re6² + 3·im6²) / 2`.
    pub sixth: f64,
}

/// Figure 9's sliding-DFT filter, translated verbatim.
///
/// # Example
///
/// ```
/// use rl_signal::dft::XsmFilter;
///
/// let mut filter = XsmFilter::new();
/// let fs = 16_000.0;
/// // Feed a pure tone at fs/4; the quarter band lights up.
/// let mut last = Default::default();
/// for i in 0..200 {
///     let t = i as f64 / fs;
///     last = filter.filter((2.0 * std::f64::consts::PI * (fs / 4.0) * t).sin());
/// }
/// assert!(last.quarter > 10.0 * last.sixth);
/// ```
#[derive(Debug, Clone)]
pub struct XsmFilter {
    samples: [f64; WINDOW],
    n: usize,
    k: usize,
    re4: f64,
    im4: f64,
    re6: f64,
    im6: f64,
}

impl XsmFilter {
    /// Creates a filter with an all-zero window (Figure 9's `init`).
    pub fn new() -> Self {
        XsmFilter {
            samples: [0.0; WINDOW],
            n: 0,
            k: 0,
            re4: 0.0,
            im4: 0.0,
            re6: 0.0,
            im6: 0.0,
        }
    }

    /// Resets the filter to its initial state.
    pub fn reset(&mut self) {
        *self = XsmFilter::new();
    }

    /// Consumes one raw microphone sample and returns the updated band
    /// amplitudes (Figure 9's `filter`).
    pub fn filter(&mut self, sample: f64) -> BandAmplitudes {
        // `sample -= samples[n], samples[n] += sample`: compute the delta
        // against the sample leaving the window and store the new value.
        let delta = sample - self.samples[self.n];
        self.samples[self.n] += delta;

        match self.n % 4 {
            0 => self.re4 += delta,
            1 => self.im4 += delta,
            2 => self.re4 -= delta,
            _ => self.im4 -= delta,
        }
        match self.k {
            0 => self.re6 += 2.0 * delta,
            1 => {
                self.re6 += delta;
                self.im6 += delta;
            }
            2 => {
                self.re6 -= delta;
                self.im6 += delta;
            }
            3 => self.re6 -= 2.0 * delta,
            4 => {
                self.re6 -= delta;
                self.im6 -= delta;
            }
            _ => {
                self.re6 += delta;
                self.im6 -= delta;
            }
        }

        self.n = (self.n + 1) % WINDOW;
        self.k = (self.k + 1) % 6;

        BandAmplitudes {
            quarter: self.re4 * self.re4 + self.im4 * self.im4,
            sixth: (self.re6 * self.re6 + 3.0 * self.im6 * self.im6) / 2.0,
        }
    }

    /// Mean per-sample energy of the current window (broadband noise-floor
    /// proxy; by Parseval the average DFT magnitude over all bins tracks
    /// this quantity).
    pub fn window_energy(&self) -> f64 {
        self.samples.iter().map(|s| s * s).sum::<f64>() / WINDOW as f64
    }
}

impl Default for XsmFilter {
    fn default() -> Self {
        XsmFilter::new()
    }
}

/// Beacon band selector for [`XsmToneDetector`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Band {
    /// Beacon at one quarter of the sampling rate.
    Quarter,
    /// Beacon at one sixth of the sampling rate.
    Sixth,
}

/// Tone detector with noise-floor subtraction built on [`XsmFilter`].
///
/// The squared band amplitude is normalized to a per-sample tone-power
/// estimate and compared against the broadband window energy; a sample is a
/// detection when `band_power > ratio * window_energy`. For a pure tone the
/// normalized band power is about twice the window energy, while for white
/// noise it is about one ninth of it, so the default ratio of 0.75 separates
/// the two cleanly.
#[derive(Debug, Clone)]
pub struct XsmToneDetector {
    filter: XsmFilter,
    band: Band,
    ratio: f64,
}

impl XsmToneDetector {
    /// Creates a detector for the chosen beacon band with the default
    /// detection ratio.
    pub fn new(band: Band) -> Self {
        XsmToneDetector {
            filter: XsmFilter::new(),
            band,
            ratio: 0.75,
        }
    }

    /// Overrides the detection ratio (builder style).
    pub fn with_ratio(mut self, ratio: f64) -> Self {
        self.ratio = ratio;
        self
    }

    /// Consumes one sample; returns `(filtered_output, detected)`, where
    /// `filtered_output` is the noise-subtracted band power (the "filtered
    /// signal" trace of Figure 10).
    pub fn step(&mut self, sample: f64) -> (f64, bool) {
        let amps = self.filter.filter(sample);
        let raw = match self.band {
            Band::Quarter => amps.quarter,
            Band::Sixth => amps.sixth,
        };
        // Normalize: a full-scale aligned tone yields (WINDOW/2)^2 * A^2.
        let band_power = raw / ((WINDOW as f64 / 2.0) * (WINDOW as f64 / 2.0)) * 2.0;
        let noise = self.filter.window_energy();
        let output = band_power - self.ratio * noise;
        // The absolute floor guards against incremental-DFT floating-point
        // drift reading as a (vanishingly small) positive output in silence.
        (output, output > 1e-6)
    }

    /// Runs the detector over a whole waveform and returns the indices of
    /// detected chirp onsets: positions where detection turns on and stays
    /// on for at least `min_run` samples.
    pub fn detect_chirps(&mut self, waveform: &[f64], min_run: usize) -> Vec<usize> {
        let mut onsets = Vec::new();
        let mut run = 0usize;
        let mut candidate = None;
        for (i, &s) in waveform.iter().enumerate() {
            let (_, hit) = self.step(s);
            if hit {
                if run == 0 {
                    candidate = Some(i);
                }
                run += 1;
                if run == min_run {
                    if let Some(c) = candidate.take() {
                        onsets.push(c);
                    }
                }
            } else {
                run = 0;
                candidate = None;
            }
        }
        onsets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(freq_fraction: f64, n: usize, amplitude: f64) -> Vec<f64> {
        (0..n)
            .map(|i| amplitude * (core::f64::consts::TAU * freq_fraction * i as f64).sin())
            .collect()
    }

    #[test]
    fn quarter_band_tone_excites_quarter_output() {
        let mut f = XsmFilter::new();
        let mut last = BandAmplitudes {
            quarter: 0.0,
            sixth: 0.0,
        };
        for s in tone(0.25, 144, 1.0) {
            last = f.filter(s);
        }
        assert!(
            last.quarter > 20.0 * last.sixth.max(1e-9),
            "quarter {} sixth {}",
            last.quarter,
            last.sixth
        );
        // Aligned full-scale tone: re4^2+im4^2 close to (W/2)^2.
        assert!(last.quarter > 0.5 * (WINDOW as f64 / 2.0).powi(2));
    }

    #[test]
    fn sixth_band_tone_excites_sixth_output() {
        let mut f = XsmFilter::new();
        let mut last = BandAmplitudes {
            quarter: 0.0,
            sixth: 0.0,
        };
        for s in tone(1.0 / 6.0, 144, 1.0) {
            last = f.filter(s);
        }
        assert!(
            last.sixth > 20.0 * last.quarter.max(1e-9),
            "quarter {} sixth {}",
            last.quarter,
            last.sixth
        );
    }

    #[test]
    fn silence_produces_zero_output() {
        let mut f = XsmFilter::new();
        let mut out = BandAmplitudes {
            quarter: 1.0,
            sixth: 1.0,
        };
        for _ in 0..100 {
            out = f.filter(0.0);
        }
        assert_eq!(out.quarter, 0.0);
        assert_eq!(out.sixth, 0.0);
        assert_eq!(f.window_energy(), 0.0);
    }

    #[test]
    fn off_band_tone_stays_quiet() {
        // A tone at fs/8 should excite neither band strongly.
        let mut f = XsmFilter::new();
        let mut peak_quarter: f64 = 0.0;
        for s in tone(0.125, 288, 1.0) {
            let a = f.filter(s);
            peak_quarter = peak_quarter.max(a.quarter);
        }
        let full_scale = (WINDOW as f64 / 2.0).powi(2);
        assert!(
            peak_quarter < 0.15 * full_scale,
            "fs/8 leakage into quarter band: {peak_quarter}"
        );
    }

    #[test]
    fn sliding_window_forgets_old_samples() {
        let mut f = XsmFilter::new();
        for s in tone(0.25, 72, 1.0) {
            f.filter(s);
        }
        // Now feed silence for a full window; the tone must wash out.
        let mut out = BandAmplitudes {
            quarter: 1.0,
            sixth: 1.0,
        };
        for _ in 0..WINDOW {
            out = f.filter(0.0);
        }
        assert!(out.quarter < 1e-9, "stale energy {}", out.quarter);
    }

    #[test]
    fn incremental_matches_direct_dft() {
        // The incremental sums must equal a direct DFT over the window.
        let wave = tone(0.23, 90, 0.8);
        let mut f = XsmFilter::new();
        let mut last = BandAmplitudes {
            quarter: 0.0,
            sixth: 0.0,
        };
        for &s in &wave {
            last = f.filter(s);
        }
        // Direct computation over the final 36 samples, mapping each sample
        // to its buffer slot coefficient (slot = global index % 36).
        let start = wave.len() - WINDOW;
        let (mut re4, mut im4, mut re6, mut im6) = (0.0, 0.0, 0.0, 0.0);
        for (offset, &s) in wave[start..].iter().enumerate() {
            let slot = (start + offset) % WINDOW;
            match slot % 4 {
                0 => re4 += s,
                1 => im4 += s,
                2 => re4 -= s,
                _ => im4 -= s,
            }
            match slot % 6 {
                0 => re6 += 2.0 * s,
                1 => {
                    re6 += s;
                    im6 += s;
                }
                2 => {
                    re6 -= s;
                    im6 += s;
                }
                3 => re6 -= 2.0 * s,
                4 => {
                    re6 -= s;
                    im6 -= s;
                }
                _ => {
                    re6 += s;
                    im6 -= s;
                }
            }
        }
        let expect_quarter = re4 * re4 + im4 * im4;
        let expect_sixth = (re6 * re6 + 3.0 * im6 * im6) / 2.0;
        assert!((last.quarter - expect_quarter).abs() < 1e-9 * (1.0 + expect_quarter));
        assert!((last.sixth - expect_sixth).abs() < 1e-9 * (1.0 + expect_sixth));
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut f = XsmFilter::new();
        for s in tone(0.25, 50, 1.0) {
            f.filter(s);
        }
        f.reset();
        assert_eq!(f.window_energy(), 0.0);
        let out = f.filter(0.0);
        assert_eq!(out.quarter, 0.0);
    }

    #[test]
    fn detector_finds_tone_against_noise() {
        let mut rng = rl_math::rng::seeded(55);
        let n = 2_000;
        let mut wave = vec![0.0f64; n];
        // Noise floor.
        for w in wave.iter_mut() {
            *w = rl_math::rng::normal(&mut rng, 0.0, 0.25);
        }
        // One strong chirp at fs/4 in the middle.
        for (i, w) in wave.iter_mut().enumerate().take(1_000).skip(800) {
            *w += 1.0 * (core::f64::consts::TAU * 0.25 * i as f64).sin();
        }
        let mut det = XsmToneDetector::new(Band::Quarter);
        let onsets = det.detect_chirps(&wave, 24);
        assert_eq!(onsets.len(), 1, "onsets: {onsets:?}");
        assert!(
            (onsets[0] as i64 - 800).unsigned_abs() < 80,
            "onset at {}",
            onsets[0]
        );
    }

    #[test]
    fn detector_quiet_on_pure_noise() {
        let mut rng = rl_math::rng::seeded(56);
        let wave: Vec<f64> = (0..4_000)
            .map(|_| rl_math::rng::normal(&mut rng, 0.0, 0.5))
            .collect();
        let mut det = XsmToneDetector::new(Band::Quarter);
        let onsets = det.detect_chirps(&wave, 24);
        assert!(onsets.is_empty(), "false onsets: {onsets:?}");
    }
}
