//! Acoustic environment profiles.
//!
//! The paper evaluates ranging in several outdoor settings with very
//! different acoustic behavior (Sections 3.3 and 3.6.2):
//!
//! * **grass (10–15 cm)** — high attenuation; virtually no detections beyond
//!   20 m, consistent (80–85 %) detection up to about 10 m;
//! * **pavement** — detections up to 35 m (occasionally 50 m), consistent up
//!   to about 25 m;
//! * **urban** — pavement-like attenuation but echo-rich ("echoes are
//!   particularly common in urban environments due to the presence of
//!   nearby buildings") and noisier;
//! * **wooded** — tall grass and scattered trees: the harshest attenuation.
//!
//! [`AcousticProfile`] captures these differences as a per-sample tone-
//! detector hit probability that decays with distance, an ambient noise
//! rate, and echo statistics. The shipped presets are calibrated so that the
//! detection-rate-versus-distance curves reproduce the prose table of
//! Section 3.6.2 (see `rl-bench`'s `MAXR` experiment).

use serde::{Deserialize, Serialize};

/// Named environments used in the paper's experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Environment {
    /// Flat grassy field, 10–15 cm grass (the 46-node grid experiment).
    Grass,
    /// Paved surface (parking-lot experiments).
    Pavement,
    /// Urban block: pavement with buildings, echoes and ambient noise
    /// (the 60-node baseline experiment of Section 3.3).
    Urban,
    /// Wooded area, >20 cm grass and scattered trees.
    Wooded,
}

impl Environment {
    /// All environments, in presentation order.
    pub const ALL: [Environment; 4] = [
        Environment::Grass,
        Environment::Pavement,
        Environment::Urban,
        Environment::Wooded,
    ];

    /// The calibrated acoustic profile for this environment.
    pub fn profile(self) -> AcousticProfile {
        match self {
            Environment::Grass => AcousticProfile {
                name: "grass",
                p_hit_near: 0.82,
                half_distance: 12.5,
                rolloff: 1.8,
                hard_range: 20.0,
                noise_rate: 0.00006,
                echo_probability: 0.08,
                echo_extra_path: (2.0, 12.0),
                echo_strength: 0.35,
                burst_rate_hz: 0.8,
                burst_len_samples: 10,
                burst_hit_probability: 0.6,
            },
            Environment::Pavement => AcousticProfile {
                name: "pavement",
                p_hit_near: 0.92,
                half_distance: 30.0,
                rolloff: 6.0,
                hard_range: 52.0,
                noise_rate: 0.00005,
                echo_probability: 0.18,
                echo_extra_path: (1.5, 10.0),
                echo_strength: 0.45,
                burst_rate_hz: 0.5,
                burst_len_samples: 8,
                burst_hit_probability: 0.55,
            },
            Environment::Urban => AcousticProfile {
                name: "urban",
                p_hit_near: 0.90,
                half_distance: 27.0,
                rolloff: 6.0,
                hard_range: 45.0,
                noise_rate: 0.00012,
                echo_probability: 0.55,
                echo_extra_path: (1.0, 25.0),
                echo_strength: 0.65,
                burst_rate_hz: 2.5,
                burst_len_samples: 12,
                burst_hit_probability: 0.7,
            },
            Environment::Wooded => AcousticProfile {
                name: "wooded",
                p_hit_near: 0.72,
                half_distance: 8.0,
                rolloff: 2.5,
                hard_range: 14.0,
                noise_rate: 0.00008,
                echo_probability: 0.25,
                echo_extra_path: (1.0, 8.0),
                echo_strength: 0.4,
                burst_rate_hz: 1.5,
                burst_len_samples: 10,
                burst_hit_probability: 0.6,
            },
        }
    }
}

impl core::fmt::Display for Environment {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.profile().name)
    }
}

/// Stochastic acoustic behavior of a deployment environment.
///
/// All probabilities are per tone-detector sample (the MICA service samples
/// the detector at 16 kHz).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcousticProfile {
    /// Short lowercase name, e.g. `"grass"`.
    pub name: &'static str,
    /// Detector hit probability per sample when the chirp is audible at
    /// close range (after speaker ramp-up).
    pub p_hit_near: f64,
    /// Distance (m) at which the hit probability has fallen to half of
    /// `p_hit_near`.
    pub half_distance: f64,
    /// Sigmoid width (m) of the attenuation roll-off around
    /// `half_distance`; smaller values give a sharper cutoff.
    pub rolloff: f64,
    /// Distance (m) beyond which the signal is never detected.
    pub hard_range: f64,
    /// Detector false-positive probability per sample from wide-band
    /// ambient noise.
    pub noise_rate: f64,
    /// Probability that a given source–receiver pair has a usable echo path
    /// (multi-path reflection).
    pub echo_probability: f64,
    /// Extra path length of the echo, `(min, max)` meters, uniform.
    pub echo_extra_path: (f64, f64),
    /// Multiplier on the direct-path hit probability for echo samples.
    pub echo_strength: f64,
    /// Rate (events/s) of discrete noise bursts (birds, footsteps,
    /// aircraft) that excite the detector.
    pub burst_rate_hz: f64,
    /// Duration of a noise burst in detector samples.
    pub burst_len_samples: usize,
    /// Detector hit probability per sample inside a noise burst.
    pub burst_hit_probability: f64,
}

impl AcousticProfile {
    /// Per-sample detector hit probability for a direct-path signal at
    /// distance `d` meters, with `sensitivity` a per-pair unit-variation
    /// multiplier (1.0 = nominal).
    ///
    /// Follows a logistic attenuation model clipped by the hard range:
    /// `p(d) = p_near / (1 + exp((d − d_half) / w))`.
    pub fn p_hit(&self, d: f64, sensitivity: f64) -> f64 {
        if d >= self.hard_range * sensitivity.max(0.25) {
            return 0.0;
        }
        let x = (d - self.half_distance * sensitivity) / self.rolloff;
        (self.p_hit_near / (1.0 + x.exp())).clamp(0.0, 1.0)
    }

    /// Distance (m) at which `p_hit` falls below `threshold` for a nominal
    /// unit, probing in 0.1 m steps. Returns `hard_range` if it never does.
    pub fn range_at_probability(&self, threshold: f64) -> f64 {
        let mut d = 0.0;
        while d < self.hard_range {
            if self.p_hit(d, 1.0) < threshold {
                return d;
            }
            d += 0.1;
        }
        self.hard_range
    }

    /// Validates the profile's parameter domains.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SignalError::InvalidConfig`] describing the first
    /// violated constraint.
    pub fn validate(&self) -> crate::Result<()> {
        use crate::SignalError::InvalidConfig;
        if !(0.0..=1.0).contains(&self.p_hit_near) {
            return Err(InvalidConfig("p_hit_near must be in [0, 1]"));
        }
        if !(self.half_distance > 0.0) {
            return Err(InvalidConfig("half_distance must be positive"));
        }
        if !(self.rolloff > 0.0) {
            return Err(InvalidConfig("rolloff must be positive"));
        }
        if !(self.hard_range > 0.0) {
            return Err(InvalidConfig("hard_range must be positive"));
        }
        if !(0.0..=1.0).contains(&self.noise_rate) {
            return Err(InvalidConfig("noise_rate must be in [0, 1]"));
        }
        if !(0.0..=1.0).contains(&self.echo_probability) {
            return Err(InvalidConfig("echo_probability must be in [0, 1]"));
        }
        if self.echo_extra_path.0 < 0.0 || self.echo_extra_path.1 < self.echo_extra_path.0 {
            return Err(InvalidConfig("echo_extra_path must be 0 <= min <= max"));
        }
        if !(0.0..=1.0).contains(&self.echo_strength) {
            return Err(InvalidConfig("echo_strength must be in [0, 1]"));
        }
        if self.burst_rate_hz < 0.0 {
            return Err(InvalidConfig("burst_rate_hz must be non-negative"));
        }
        if !(0.0..=1.0).contains(&self.burst_hit_probability) {
            return Err(InvalidConfig("burst_hit_probability must be in [0, 1]"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_are_valid() {
        for env in Environment::ALL {
            env.profile().validate().unwrap_or_else(|e| {
                panic!("{env} profile invalid: {e}");
            });
        }
    }

    #[test]
    fn hit_probability_decreases_with_distance() {
        for env in Environment::ALL {
            let p = env.profile();
            let mut last = f64::INFINITY;
            let mut d = 0.0;
            while d <= p.hard_range + 1.0 {
                let cur = p.p_hit(d, 1.0);
                assert!(cur <= last + 1e-12, "{env}: p_hit not monotone at {d} m");
                assert!((0.0..=1.0).contains(&cur));
                last = cur;
                d += 0.5;
            }
        }
    }

    #[test]
    fn grass_range_is_shorter_than_pavement() {
        let grass = Environment::Grass.profile();
        let pavement = Environment::Pavement.profile();
        // Paper: virtually no detections beyond 20 m on grass; up to 35-50 m
        // on pavement.
        assert!(grass.hard_range < 25.0);
        assert!(pavement.hard_range > 35.0);
        assert!(grass.range_at_probability(0.4) < pavement.range_at_probability(0.4));
    }

    #[test]
    fn grass_consistent_detection_near_10m() {
        // Section 3.6.2: ~80-85 % of chirps detected at 10 m on grass.
        let grass = Environment::Grass.profile();
        let p10 = grass.p_hit(10.0, 1.0);
        assert!(
            (0.6..=0.95).contains(&p10),
            "grass per-sample hit at 10 m should be strong, got {p10}"
        );
        // And nearly nothing at 20 m.
        assert!(grass.p_hit(20.5, 1.0) < 0.15);
        assert_eq!(grass.p_hit(30.0, 1.0), 0.0);
    }

    #[test]
    fn pavement_consistent_detection_near_25m() {
        let pavement = Environment::Pavement.profile();
        assert!(pavement.p_hit(25.0, 1.0) > 0.5);
        assert!(pavement.p_hit(45.0, 1.0) < 0.1);
    }

    #[test]
    fn urban_is_echo_rich_and_noisy() {
        let urban = Environment::Urban.profile();
        let grass = Environment::Grass.profile();
        assert!(urban.echo_probability > 3.0 * grass.echo_probability);
        assert!(urban.noise_rate > grass.noise_rate);
        assert!(urban.burst_rate_hz > grass.burst_rate_hz);
    }

    #[test]
    fn sensitivity_scales_effective_range() {
        let grass = Environment::Grass.profile();
        // A hot speaker/mic pair reaches farther, a weak one shorter.
        assert!(grass.p_hit(15.0, 1.3) > grass.p_hit(15.0, 1.0));
        assert!(grass.p_hit(15.0, 0.7) < grass.p_hit(15.0, 1.0));
    }

    #[test]
    fn validate_catches_bad_fields() {
        let mut p = Environment::Grass.profile();
        p.p_hit_near = 1.5;
        assert!(p.validate().is_err());
        let mut p = Environment::Grass.profile();
        p.echo_extra_path = (5.0, 1.0);
        assert!(p.validate().is_err());
        let mut p = Environment::Grass.profile();
        p.rolloff = 0.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn display_names() {
        assert_eq!(Environment::Grass.to_string(), "grass");
        assert_eq!(Environment::Urban.to_string(), "urban");
    }

    #[test]
    fn serde_roundtrip() {
        let e = Environment::Pavement;
        let json = serde_json::to_string(&e).unwrap();
        assert_eq!(serde_json::from_str::<Environment>(&json).unwrap(), e);
    }
}
