//! Acoustic signal substrate for the `resilient-localization` workspace.
//!
//! The paper's ranging service measures the time-difference-of-arrival
//! between a radio message and an acoustic chirp on MICA2 motes. Lacking the
//! hardware, this crate simulates the acoustic path at sample level and
//! implements the paper's detection algorithms verbatim:
//!
//! * [`mod@env`] — per-environment acoustic profiles (grass, pavement, urban,
//!   wooded): detection probability versus distance, ambient noise rate,
//!   echo geometry; calibrated to the ranges reported in Sections 3.3/3.6,
//! * [`chirp`] — chirp train configuration: 4.3 kHz tone, 8 ms chirps,
//!   silence gaps with small random delays (the paper's echo counters),
//! * [`detector`] — the stochastic binary tone-detector model
//!   `P[b(t)=1 | signal] ≫ P[b(t)=1 | noise]` of Section 3.5, including
//!   speaker/microphone unit-to-unit variation and faulty hardware,
//! * [`detection`] — the `record-signal` / `detect-signal` routines of
//!   Figure 3: multi-chirp accumulation plus `k`-of-`m` threshold detection,
//! * [`dft`] — the XSM software tone detector of Figure 9: a 36-sample
//!   sliding DFT amplifying the `fs/4` and `fs/6` bands, with noise-floor
//!   subtraction,
//! * [`waveform`] — sampled waveform synthesis (tone bursts, speaker ramp-up,
//!   echoes, Gaussian noise) for exercising the DFT detector (Figure 10).
//!
//! # Example: one simulated chirp-train reception
//!
//! ```
//! use rl_signal::chirp::ChirpTrainConfig;
//! use rl_signal::detector::ReceptionSimulator;
//! use rl_signal::env::Environment;
//!
//! let mut rng = rl_math::rng::seeded(1);
//! let sim = ReceptionSimulator::new(Environment::Grass.profile(), ChirpTrainConfig::paper());
//! let outcome = sim.receive(12.0, &mut rng); // true distance 12 m
//! let detection = outcome.detect_default();
//! assert!(detection.is_some(), "12 m on grass should usually be detected");
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chirp;
pub mod detection;
pub mod detector;
pub mod dft;
pub mod env;
pub mod waveform;

pub use chirp::{ChirpTrainConfig, ChirpTrainSchedule};
pub use detection::{detect_signal, record_signal, DetectionParams};
pub use detector::{NodeAcoustics, ReceptionOutcome, ReceptionSimulator};
pub use dft::XsmFilter;
pub use env::{AcousticProfile, Environment};

/// Speed of sound used throughout the workspace (m/s), as in the paper.
pub const SPEED_OF_SOUND: f64 = 340.0;

/// Error type for signal-processing routines.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SignalError {
    /// A configuration parameter was outside its documented domain.
    InvalidConfig(&'static str),
    /// An input buffer was too short for the requested operation.
    BufferTooShort {
        /// Samples required.
        needed: usize,
        /// Samples available.
        got: usize,
    },
}

impl core::fmt::Display for SignalError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SignalError::InvalidConfig(what) => write!(f, "invalid configuration: {what}"),
            SignalError::BufferTooShort { needed, got } => {
                write!(f, "buffer too short: needed {needed} samples, got {got}")
            }
        }
    }
}

impl std::error::Error for SignalError {}

/// Convenience result alias for this crate.
pub type Result<T> = core::result::Result<T, SignalError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert_eq!(
            SignalError::InvalidConfig("zero sampling rate").to_string(),
            "invalid configuration: zero sampling rate"
        );
        assert_eq!(
            SignalError::BufferTooShort { needed: 36, got: 4 }.to_string(),
            "buffer too short: needed 36 samples, got 4"
        );
    }

    #[test]
    fn error_is_well_behaved() {
        fn assert_good<E: std::error::Error + Send + Sync + 'static>() {}
        assert_good::<SignalError>();
    }
}
