//! Sampled waveform synthesis for the software tone detector.
//!
//! Figure 10 of the paper shows the DFT filter's response to "clean" and
//! "noisy" signals containing periodic constant-frequency chirps. This
//! module synthesizes such waveforms — tone bursts with speaker ramp-up,
//! optional echoes and additive Gaussian noise — so that the `rl-bench`
//! harness can regenerate the figure and tests can exercise the detector on
//! controlled inputs.

use rand::Rng;
use rl_math::rng::GaussianSampler;
use serde::{Deserialize, Serialize};

/// Description of a periodic chirp waveform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WaveformSpec {
    /// Total length in samples.
    pub len: usize,
    /// Beacon frequency as a fraction of the sampling rate (0.25 targets
    /// the XSM filter's `fs/4` band).
    pub freq_fraction: f64,
    /// Chirp amplitude (arbitrary units; Figure 10's axis spans ±1500).
    pub amplitude: f64,
    /// Chirp length in samples.
    pub chirp_len: usize,
    /// Interval between chirp starts in samples.
    pub period: usize,
    /// First chirp start in samples.
    pub first_start: usize,
    /// Number of chirps.
    pub n_chirps: usize,
    /// Linear amplitude ramp-up length at the start of each chirp, samples.
    pub rampup: usize,
    /// Standard deviation of additive white Gaussian noise.
    pub noise_sigma: f64,
}

impl WaveformSpec {
    /// The "clean" four-chirp waveform of Figure 10 (left).
    pub fn figure10_clean() -> Self {
        WaveformSpec {
            len: 800,
            freq_fraction: 0.25,
            amplitude: 1_000.0,
            chirp_len: 80,
            period: 200,
            first_start: 60,
            n_chirps: 4,
            rampup: 12,
            noise_sigma: 0.0,
        }
    }

    /// The "noisy" variant of Figure 10 (right): the same chirps buried in
    /// wide-band noise of comparable amplitude.
    pub fn figure10_noisy() -> Self {
        WaveformSpec {
            noise_sigma: 320.0,
            ..WaveformSpec::figure10_clean()
        }
    }

    /// Ground-truth chirp onset indices.
    pub fn chirp_onsets(&self) -> Vec<usize> {
        (0..self.n_chirps)
            .map(|i| self.first_start + i * self.period)
            .filter(|&s| s < self.len)
            .collect()
    }

    /// Synthesizes the waveform.
    pub fn synthesize<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        let mut wave = vec![0.0f64; self.len];
        for onset in self.chirp_onsets() {
            add_tone_burst(
                &mut wave,
                onset,
                self.chirp_len,
                self.freq_fraction,
                self.amplitude,
                self.rampup,
            );
        }
        if self.noise_sigma > 0.0 {
            let mut g = GaussianSampler::new();
            for w in wave.iter_mut() {
                *w += g.sample_with(rng, 0.0, self.noise_sigma);
            }
        }
        wave
    }
}

/// Adds a tone burst in place: `len` samples at `freq_fraction` of the
/// sampling rate, amplitude ramping linearly over the first `rampup`
/// samples (the analog speaker "may take some time before … its maximum
/// output power level", Section 3.4).
pub fn add_tone_burst(
    wave: &mut [f64],
    start: usize,
    len: usize,
    freq_fraction: f64,
    amplitude: f64,
    rampup: usize,
) {
    for j in 0..len {
        let idx = start + j;
        if idx >= wave.len() {
            break;
        }
        let ramp = if rampup > 0 {
            ((j + 1) as f64 / rampup as f64).min(1.0)
        } else {
            1.0
        };
        wave[idx] += amplitude * ramp * (core::f64::consts::TAU * freq_fraction * idx as f64).sin();
    }
}

/// Adds a delayed, attenuated copy of the `[start, start+len)` region of the
/// waveform onto itself (a crude single-bounce echo).
pub fn add_echo(wave: &mut [f64], start: usize, len: usize, delay: usize, attenuation: f64) {
    // Copy source region first so the echo does not feed back on itself.
    let end = (start + len).min(wave.len());
    let source: Vec<f64> = wave[start..end].to_vec();
    for (j, &s) in source.iter().enumerate() {
        let idx = start + delay + j;
        if idx >= wave.len() {
            break;
        }
        wave[idx] += s * attenuation;
    }
}

/// Root-mean-square amplitude of a waveform segment.
pub fn rms(wave: &[f64]) -> f64 {
    if wave.is_empty() {
        return 0.0;
    }
    (wave.iter().map(|s| s * s).sum::<f64>() / wave.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::{Band, XsmToneDetector};
    use rl_math::rng::seeded;

    #[test]
    fn clean_spec_has_four_onsets() {
        let spec = WaveformSpec::figure10_clean();
        assert_eq!(spec.chirp_onsets(), vec![60, 260, 460, 660]);
    }

    #[test]
    fn synthesized_clean_wave_has_energy_only_in_chirps() {
        let spec = WaveformSpec::figure10_clean();
        let wave = spec.synthesize(&mut seeded(1));
        assert_eq!(wave.len(), 800);
        // Quiet before the first chirp.
        assert_eq!(rms(&wave[0..60]), 0.0);
        // Loud inside a chirp.
        assert!(rms(&wave[80..130]) > 400.0);
        // Quiet again in the gap.
        assert_eq!(rms(&wave[150..250]), 0.0);
    }

    #[test]
    fn noisy_wave_has_floor_everywhere() {
        let spec = WaveformSpec::figure10_noisy();
        let wave = spec.synthesize(&mut seeded(2));
        let gap_rms = rms(&wave[150..250]);
        assert!(
            (gap_rms - spec.noise_sigma).abs() < 0.3 * spec.noise_sigma,
            "gap rms {gap_rms}"
        );
    }

    #[test]
    fn detector_finds_all_clean_chirps() {
        let spec = WaveformSpec::figure10_clean();
        let wave = spec.synthesize(&mut seeded(3));
        let mut det = XsmToneDetector::new(Band::Quarter);
        let onsets = det.detect_chirps(&wave, 24);
        assert_eq!(onsets.len(), 4, "onsets {onsets:?}");
        for (found, expected) in onsets.iter().zip(spec.chirp_onsets()) {
            assert!(
                (*found as i64 - expected as i64).unsigned_abs() < 60,
                "found {found} expected {expected}"
            );
        }
    }

    #[test]
    fn detector_finds_most_noisy_chirps_without_false_positives() {
        // Figure 10 (right): three of the four chirps detected, no false
        // positives. We accept 2-4 detections but verify each aligns with a
        // true chirp.
        let spec = WaveformSpec::figure10_noisy();
        let wave = spec.synthesize(&mut seeded(4));
        let mut det = XsmToneDetector::new(Band::Quarter);
        let onsets = det.detect_chirps(&wave, 24);
        assert!(
            (2..=4).contains(&onsets.len()),
            "expected 2-4 detections, got {onsets:?}"
        );
        for found in &onsets {
            let aligned = spec
                .chirp_onsets()
                .iter()
                .any(|&e| (*found as i64 - e as i64).unsigned_abs() < spec.chirp_len as u64);
            assert!(aligned, "false positive at {found}");
        }
    }

    #[test]
    fn tone_burst_ramp_and_bounds() {
        let mut wave = vec![0.0; 100];
        add_tone_burst(&mut wave, 90, 50, 0.25, 1.0, 4);
        // Does not write out of bounds and is non-zero near the end.
        assert!(wave[95].abs() <= 1.0 + 1e-12);
        let mut flat = vec![0.0; 64];
        add_tone_burst(&mut flat, 0, 64, 0.25, 2.0, 0);
        assert!(rms(&flat) > 1.0);
    }

    #[test]
    fn echo_adds_attenuated_copy() {
        let mut wave = vec![0.0; 300];
        add_tone_burst(&mut wave, 50, 40, 0.25, 1.0, 1);
        let original = wave.clone();
        add_echo(&mut wave, 50, 40, 100, 0.5);
        // The echoed region gained energy; the original region is unchanged.
        assert_eq!(wave[50..90], original[50..90]);
        assert!(rms(&wave[150..190]) > 0.3);
    }

    #[test]
    fn rms_of_empty_is_zero() {
        assert_eq!(rms(&[]), 0.0);
    }

    #[test]
    fn serde_roundtrip() {
        let spec = WaveformSpec::figure10_noisy();
        let json = serde_json::to_string(&spec).unwrap();
        assert_eq!(serde_json::from_str::<WaveformSpec>(&json).unwrap(), spec);
    }
}
