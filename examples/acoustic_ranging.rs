//! Sample-level walkthrough of the acoustic ranging pipeline.
//!
//! Follows one chirp train from emission to distance estimate: the binary
//! tone-detector stream, multi-chirp accumulation, two-level threshold
//! detection (Figure 3), δ_const calibration, and the error left over —
//! then shows the same measurement through the XSM software DFT detector
//! (Figure 9).
//!
//! ```text
//! cargo run --release --example acoustic_ranging
//! ```

use rl_ranging::tdoa;
use rl_signal::chirp::ChirpTrainConfig;
use rl_signal::detection::DetectionParams;
use rl_signal::detector::ReceptionSimulator;
use rl_signal::dft::{Band, XsmToneDetector};
use rl_signal::env::Environment;
use rl_signal::waveform::WaveformSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rl_math::rng::seeded(77);
    let true_distance = 12.5; // meters

    println!("== hardware tone detector path (MICA2) ==");
    let config = ChirpTrainConfig::paper();
    println!(
        "chirps: {} x {:.0} ms at {:.1} kHz, buffer {} samples ({} bytes of mote RAM)",
        config.n_chirps,
        config.chirp_ms,
        config.tone_hz / 1000.0,
        config.buffer_samples(),
        config.buffer_ram_bytes()
    );

    let sim = ReceptionSimulator::new(Environment::Grass.profile(), config.clone());

    // Calibration measures the constant sensing/actuation bias, exactly as
    // the paper's pre-deployment procedure does.
    let converter = tdoa::calibrate(&sim, &DetectionParams::paper(), 8.0, 40, &mut rng)?;
    println!(
        "calibrated delta_const: {:.1} samples = {:.3} m",
        converter.delta_const_samples(),
        converter.delta_const_meters()
    );

    // One reception at the true distance.
    let outcome = sim.receive(true_distance, &mut rng);
    let occupied = outcome.accumulated.iter().filter(|&&c| c > 0).count();
    println!(
        "accumulated buffer: {} of {} offsets excited, max count {}",
        occupied,
        outcome.accumulated.len(),
        outcome.accumulated.iter().max().unwrap()
    );

    match outcome.detect_default() {
        Some(idx) => {
            let est = converter.distance(idx);
            println!(
                "detected onset at sample {idx} -> {est:.3} m (true {true_distance} m, \
                 error {:+.3} m)",
                est - true_distance
            );
        }
        None => println!("no detection this round (try another seed)"),
    }

    // Repeated measurements + median, as the service would do.
    let mut estimates = Vec::new();
    for _ in 0..6 {
        let out = sim.receive(true_distance, &mut rng);
        if let Some(idx) = out.detect_default() {
            estimates.push(converter.distance(idx));
        }
    }
    if let Some(median) = rl_math::stats::median_of(&estimates) {
        println!(
            "median of {} rounds: {median:.3} m (error {:+.3} m)",
            estimates.len(),
            median - true_distance
        );
    }

    println!("\n== software DFT detector path (XSM, Figure 10) ==");
    let spec = WaveformSpec::figure10_noisy();
    let wave = spec.synthesize(&mut rng);
    let mut detector = XsmToneDetector::new(Band::Quarter);
    let onsets = detector.detect_chirps(&wave, 24);
    println!(
        "noisy 4-chirp waveform: detected onsets at {onsets:?} (true: {:?})",
        spec.chirp_onsets()
    );
    Ok(())
}
