//! The town-map simulation study: multilateration vs centralized LSS vs
//! distributed LSS on the same data.
//!
//! Mirrors the paper's Section 4.2.2 comparison: 59 nodes along the streets
//! of a few city blocks, synthetic ranging (pairs under 22 m, N(0, 0.33 m)
//! noise). Multilateration gets 18 anchors; LSS gets none and still wins.
//!
//! ```text
//! cargo run --release --example city_blocks
//! ```

use resilient_localization::prelude::*;

fn main() -> Result<()> {
    let mut rng = rl_math::rng::seeded(2005);
    let scenario = rl_deploy::Scenario::town(2005);
    let truth = &scenario.deployment.positions;
    println!(
        "town: {} nodes, {} anchors, {} pairs under 22 m",
        truth.len(),
        scenario.anchors.len(),
        scenario.deployment.pairs_within(22.0)
    );

    let set = rl_deploy::SyntheticRanging::paper().measure_all(truth, &mut rng);
    println!("measured pairs: {}\n", set.len());

    // --- Multilateration with 18 anchors -------------------------------
    let anchors = Anchor::from_truth(&scenario.anchors, truth);
    let out = MultilaterationSolver::new(MultilaterationConfig::paper())
        .solve(&set, &anchors, &mut rng)?;
    let non_anchors: Vec<NodeId> = scenario.non_anchors();
    let localized: Vec<NodeId> = non_anchors
        .iter()
        .copied()
        .filter(|&id| out.positions.is_localized(id))
        .collect();
    let mean_err = if localized.is_empty() {
        f64::NAN
    } else {
        localized
            .iter()
            .map(|&id| out.positions.get(id).unwrap().distance(truth[id.index()]))
            .sum::<f64>()
            / localized.len() as f64
    };
    println!(
        "multilateration: {}/{} non-anchors localized, avg error {:.3} m",
        localized.len(),
        non_anchors.len(),
        mean_err
    );

    // --- Centralized LSS, zero anchors ---------------------------------
    let config = LssConfig::default().with_min_spacing(9.0, 10.0);
    let solution = LssSolver::new(config).solve(&set, &mut rng)?;
    let eval = evaluate_against_truth(&solution.positions(), truth)?;
    println!(
        "centralized LSS:  {}/{} localized, avg error {:.3} m (no anchors!)",
        eval.localized, eval.total, eval.mean_error
    );

    // --- Distributed LSS ------------------------------------------------
    let config = DistributedConfig::default().with_min_spacing(9.0, 10.0);
    let out = DistributedSolver::new(config).solve(&set, truth, &mut rng)?;
    let eval = evaluate_against_truth(&out.positions, truth)?;
    println!(
        "distributed LSS:  {}/{} localized, avg error {:.3} m \
         ({} local maps, {} messages)",
        eval.localized, eval.total, eval.mean_error, out.local_maps_built, out.messages_delivered
    );
    Ok(())
}
