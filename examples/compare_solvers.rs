//! Head-to-head solver comparison through one `Campaign` invocation.
//!
//! Runs every algorithm family — centralized LSS, multilateration (plain
//! and progressive), distributed LSS, MDS-MAP, DV-hop and centroid —
//! through the unified `Localizer` trait on the paper's Figure-5 grass
//! grid (46 motes, 13 anchors where applicable, synthetic 22 m /
//! N(0, 0.33 m) ranging). The same canonical campaign backs the
//! `BASELINES` experiment of the `figures` binary.
//!
//! ```text
//! cargo run --release --example compare_solvers
//! ```

use resilient_localization::bench::campaign::figure5_head_to_head;
use resilient_localization::prelude::*;

fn main() -> Result<()> {
    let campaign = figure5_head_to_head(2005);
    let report = campaign.run();

    // The summary includes per-cell wall time (mean/max over runs).
    println!("{}", report.summary_table());
    println!(
        "campaign: {} cells in {:.1} ms on {} worker(s)\n",
        report.runs.len(),
        report.total_wall.as_secs_f64() * 1e3,
        report.workers
    );

    for (scenario, localizer) in report.cells() {
        for record in report.runs_for(&scenario, &localizer) {
            match &record.outcome {
                Ok(outcome) => {
                    let frame = match outcome.solution.frame() {
                        Frame::Absolute => "absolute",
                        Frame::Relative => "relative (aligned for evaluation)",
                    };
                    match &outcome.evaluation {
                        Some(eval) => println!(
                            "{localizer:28} {}/{} non-anchors localized, {:.3} m mean error, {frame}",
                            eval.localized, eval.total, eval.mean_error
                        ),
                        None => println!("{localizer:28} produced no evaluable positions"),
                    }
                }
                Err(e) => println!("{localizer:28} failed: {e}"),
            }
        }
        if let Some((mean, max)) = report.wall_stats(&scenario, &localizer) {
            println!(
                "{localizer:28}   wall time {:.1} ms mean / {:.1} ms max",
                mean.as_secs_f64() * 1e3,
                max.as_secs_f64() * 1e3
            );
        }
    }
    Ok(())
}
