//! The paper's grass-field pipeline, end to end.
//!
//! Reproduces the full Section 3 + Section 4.2 workflow on the 46-node
//! offset grid: acoustic chirp-train simulation, two-level threshold
//! detection, median filtering, bidirectional consistency checking, and
//! finally centralized LSS with the minimum-spacing soft constraint —
//! compared head-to-head against anchor-based multilateration on the same
//! sparse data.
//!
//! ```text
//! cargo run --release --example grassy_field
//! ```

use resilient_localization::prelude::*;
use rl_ranging::consistency::{merge_bidirectional, ConsistencyConfig};
use rl_ranging::filter::StatFilter;
use rl_ranging::service::{RangingService, ServiceConfig};

// Mixed error types (ranging service + localization), so this example
// keeps the boxed error; the crate's own one-parameter `Result` from the
// prelude is named around it.
fn main() -> std::result::Result<(), Box<dyn std::error::Error>> {
    let mut rng = rl_math::rng::seeded(7);

    // The 46 reporting motes of the paper's field experiment (one of the
    // 47 grid positions failed to report).
    let field = rl_deploy::grid::OffsetGrid::paper_figure5()
        .generate()
        .without_nodes(&[0]);
    println!(
        "== acoustic ranging on {} ({} nodes) ==",
        field.name,
        field.len()
    );

    // Calibrate and run the refined ranging service: 6 rounds of 10-chirp
    // trains per ordered pair, 4.3 kHz tone, T=2 / k=6-of-32 detection.
    let service = RangingService::new(Environment::Grass, ServiceConfig::refined(), &mut rng)?;
    println!(
        "calibrated delta_const = {:.3} m",
        service.converter().delta_const_meters()
    );
    let campaign = service.run_campaign(&field.positions, &mut rng);
    println!("raw directed samples: {}", campaign.samples.len());

    let abs_errors: Vec<f64> = campaign.errors().iter().map(|e| e.abs()).collect();
    println!(
        "raw ranging: median |error| {:.3} m, gross (>1 m) {:.1}%",
        rl_math::stats::median_of(&abs_errors).unwrap_or(f64::NAN),
        100.0 * abs_errors.iter().filter(|e| **e > 1.0).count() as f64
            / abs_errors.len().max(1) as f64
    );

    // Statistical filtering + bidirectional consistency.
    let estimates = StatFilter::Median.apply(&campaign);
    let set = merge_bidirectional(&estimates, campaign.n, &ConsistencyConfig::default());
    println!(
        "measurement graph: {} pairs, average degree {:.1}",
        set.len(),
        set.average_degree()
    );

    // Multilateration with 13 random anchors (the paper's Figure 14).
    println!("\n== multilateration, 13 random anchors ==");
    let anchor_ids = rl_deploy::AnchorSelection::Random { count: 13 }.select(
        &rl_deploy::Deployment::new("grid", field.positions.clone()),
        &mut rng,
    );
    let anchors = Anchor::from_truth(&anchor_ids, &field.positions);
    let solver = MultilaterationSolver::new(MultilaterationConfig::paper());
    match solver.solve(&set, &anchors, &mut rng) {
        Ok(out) => {
            let non_anchor_localized = out
                .positions
                .localized_nodes()
                .iter()
                .filter(|id| !anchor_ids.contains(id))
                .count();
            println!(
                "localized {} of {} non-anchors (mean {:.2} anchor ranges per node)",
                non_anchor_localized,
                field.len() - anchors.len(),
                out.mean_anchors_available
            );
        }
        Err(e) => println!("multilateration failed: {e}"),
    }

    // Centralized LSS, no anchors at all (the paper's Figure 18).
    println!("\n== centralized LSS + soft constraint, no anchors ==");
    let config = LssConfig::default().with_min_spacing(9.14, 10.0);
    let solution = LssSolver::new(config).solve(&set, &mut rng)?;
    let eval = evaluate_against_truth(&solution.positions(), &field.positions)?;
    println!(
        "all {} nodes localized, average error {:.3} m ({:.3} m without worst 5)",
        eval.localized,
        eval.mean_error,
        eval.mean_error_without_worst(5)
    );
    println!("(paper: 2.2 m / 1.5 m on its 247-pair field data)");
    Ok(())
}
