//! Quickstart: localize a sensor field in ~40 lines.
//!
//! Generates the paper's Figure-5 offset grid, produces synthetic ranging
//! measurements (true distances under 22 m perturbed by N(0, 0.33 m)),
//! solves with centralized LSS + the minimum-spacing soft constraint, and
//! evaluates against ground truth.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use resilient_localization::prelude::*;

fn main() -> Result<()> {
    let mut rng = rl_math::rng::seeded(42);

    // 1. The deployment: the paper's 7x7 offset grid (47 motes).
    let field = rl_deploy::grid::OffsetGrid::paper_figure5().generate();
    println!("deployment: {} with {} nodes", field.name, field.len());

    // 2. Ranging: every pair under 22 m gets a noisy distance.
    let measurements =
        rl_deploy::synth::SyntheticRanging::paper().measure_all(&field.positions, &mut rng);
    println!(
        "measurements: {} pairs (average degree {:.1})",
        measurements.len(),
        measurements.average_degree()
    );

    // 3. Localization: anchor-free LSS with the 9.14 m spacing constraint.
    let config = LssConfig::default().with_min_spacing(9.14, 10.0);
    let solution = LssSolver::new(config).solve(&measurements, &mut rng)?;
    println!(
        "solved: stress {:.2} after {} descent iterations",
        solution.stress(),
        solution.iterations()
    );

    // 4. Evaluation: best-fit alignment against ground truth, as in the
    //    paper ("translated, rotated and flipped").
    let eval = evaluate_against_truth(&solution.positions(), &field.positions)?;
    println!(
        "localized {}/{} nodes, average error {:.3} m (max {:.3} m)",
        eval.localized, eval.total, eval.mean_error, eval.max_error
    );
    Ok(())
}
