//! Localization as a service: spin up an `rl-serve` server in-process,
//! query it as a client, and watch batching and caching work.
//!
//! The server owns the preset deployment registry (the paper's grass
//! grid, parking lot and town, plus the metro extensions) and answers
//! `(deployment, solver, seed)` queries over length-prefixed JSON
//! frames. Identical concurrent requests coalesce into one shared
//! solve; repeats are served bit-identically from an LRU cache.
//!
//! ```text
//! cargo run --release --example serve_client
//! ```

use resilient_localization::prelude::*;
use resilient_localization::serve::server::solve_direct;

fn main() -> std::result::Result<(), Box<dyn std::error::Error>> {
    // In production `rl-serve --addr 0.0.0.0:4105` runs standalone; an
    // in-process spawn on an ephemeral port behaves identically.
    let (addr, handle) = Server::spawn(ServeConfig::default())?;
    let mut client = Client::connect(addr)?;
    println!("connected to {} at {addr}", client.server);

    let status = client.status()?;
    println!(
        "serveable deployments ({} workers): {}\n",
        status.workers,
        status.deployments.join(", ")
    );

    // Query a few (deployment, solver) pairs at the campaign seed.
    let seed = 20050614;
    for (deployment, solver) in [
        ("parking-lot", "multilateration"),
        ("town", "lss"),
        ("grass-grid", "distributed-lss"),
    ] {
        let reply = client.localize(deployment, solver, seed)?;
        match reply.mean_error_m {
            Some(err) => println!(
                "{deployment:12} x {solver:16} {:3}/{:3} localized, {err:.3} m mean error ({})",
                reply.localized,
                reply.positions.len(),
                reply.frame
            ),
            None => println!(
                "{deployment:12} x {solver:16} {:3}/{:3} localized ({})",
                reply.localized,
                reply.positions.len(),
                reply.frame
            ),
        }
    }

    // Repeat a query: answered from the solution cache, and the reply is
    // bit-identical to an in-process solve of the same triple.
    let again = client.localize("town", "lss", seed)?;
    let direct = solve_direct("town", "lss", seed)?;
    assert_eq!(again, direct, "served reply must match the direct solve");
    let status = client.status()?;
    println!(
        "\nafter {} requests: {} solves, {} cache hits, {} coalesced",
        status.requests, status.solves, status.cache_hits, status.coalesced
    );

    client.shutdown()?;
    handle.join().expect("server thread")?;
    println!("server shut down cleanly");
    Ok(())
}
