//! The sparse kernel layer: preconditioned and warm-started CG.
//!
//! Builds an ill-conditioned SPD system (a stiffness-ladder chain, the
//! kind of spectrum refinement normal equations develop as damping
//! shrinks), solves it with plain CG, Jacobi-PCG, and IC(0)-PCG, and
//! shows the iteration counts side by side; then demonstrates the
//! warm-start contract — a good seed saves iterations, a stale seed is
//! discarded rather than paid for.
//!
//! ```text
//! cargo run --release --example sparse_kernels
//! ```

use resilient_localization::prelude::*;

/// A chain whose diagonal cycles through seven stiffness decades — a
/// condition number Jacobi scaling genuinely flattens.
fn ill_conditioned(n: usize) -> (CsrMatrix, Vec<f64>) {
    let mut edges: Vec<(usize, usize, f64)> = Vec::new();
    for i in 0..n {
        edges.push((i, i, 2.0 + 1000.0 * (i % 7) as f64));
        if i + 1 < n {
            edges.push((i, i + 1, -1.0));
        }
    }
    let a = CsrMatrix::symmetric_from_edges(n, &edges).expect("finite in-bounds edges");
    let b: Vec<f64> = (0..n).map(|i| ((i * 13 % 17) as f64) - 8.0).collect();
    (a, b)
}

fn main() -> Result<()> {
    let n = 400;
    let (a, b) = ill_conditioned(n);
    let cfg = CgConfig::default()
        .with_max_iterations(10_000)
        .with_tolerance(1e-10);

    // One knob selects the preconditioner; None reproduces the
    // historical unpreconditioned path bit for bit.
    println!("solving a {n}-node stiffness ladder to 1e-10:");
    let mut reference: Option<Vec<f64>> = None;
    for kind in [
        PreconditionerKind::None,
        PreconditionerKind::Jacobi,
        PreconditionerKind::IncompleteCholesky,
    ] {
        let out = conjugate_gradient(&a, &b, &cfg.with_preconditioner(kind))?;
        println!(
            "  {:>18}: {:>4} iterations (relative residual {:.2e})",
            format!("{kind:?}"),
            out.iterations,
            out.relative_residual
        );
        if let Some(reference) = &reference {
            let scale = reference.iter().map(|v| v.abs()).fold(1.0, f64::max);
            let diff = reference
                .iter()
                .zip(&out.x)
                .map(|(r, x)| (r - x).abs())
                .fold(0.0, f64::max);
            assert!(
                diff / scale < 1e-6,
                "preconditioning changed the answer: {diff:e}"
            );
        } else {
            reference = Some(out.x);
        }
    }

    // Warm starts through the full-control entry point: seeding with the
    // known solution converges immediately, and a stale seed costs only
    // the one matvec spent detecting it (the never-worse contract).
    let exact = reference.expect("solved above");
    let ic = IncompleteCholesky::factor(&a)?;
    let mut ws = CgWorkspace::new();
    let warm = conjugate_gradient_with(&a, &b, Some(&exact), Some(&ic), &cfg, &mut ws)?;
    println!(
        "warm start from the exact solution: {} iterations",
        warm.iterations
    );
    let stale: Vec<f64> = (0..n).map(|i| 1e3 + i as f64).collect();
    let cold = conjugate_gradient_with(&a, &b, None, Some(&ic), &cfg, &mut ws)?;
    let guarded = conjugate_gradient_with(&a, &b, Some(&stale), Some(&ic), &cfg, &mut ws)?;
    println!(
        "stale seed discarded by the never-worse guard: {} iterations (cold start: {})",
        guarded.iterations, cold.iterations
    );

    // The same knobs ride into the refinement pipeline as presets:
    // DistributedConfig::metro_fast() opts the inner Gauss–Newton CG
    // solves into warm starts (the zero-started default is
    // fingerprint-pinned, so the acceleration is opt-in).
    let fast = DistributedConfig::metro_fast();
    let refine = fast.refine.as_ref().expect("metro preset refines");
    println!(
        "DistributedConfig::metro_fast(): cg_warm_start = {}, preconditioner = {:?}",
        refine.cg_warm_start, refine.cg.preconditioner
    );
    Ok(())
}
