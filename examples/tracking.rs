//! Online tracking walkthrough: a mobile town-scale network streamed
//! through the warm-started tracker, tick by tick.
//!
//! Builds a [`MobilityScenario`] (random-walk motion plus light
//! join/leave churn over the paper's town deployment), replays its
//! deterministic trace through a [`StreamingTracker`], and prints what
//! each tick cost and how well it tracked ground truth — then re-runs
//! the same trace forced cold to show what the warm seed buys.
//!
//! ```text
//! cargo run --release --example tracking
//! ```

use resilient_localization::prelude::*;

fn drive(tracker: &mut StreamingTracker, trace: &MobilityTrace, narrate: bool) -> (f64, f64) {
    let (mut wall_s, mut err_sum) = (0.0, 0.0);
    for obs in trace.iter() {
        let active = obs.active.len();
        let (joined, left) = (obs.joined.len(), obs.left.len());
        let truth = obs.truth.clone().expect("mobility traces carry truth");
        let solution = tracker.observe(obs).expect("town trace solves");
        let eval = evaluate_absolute(solution.positions(), &truth).expect("anchored frame");
        let wall = solution.stats().wall_time;
        wall_s += wall.as_secs_f64();
        err_sum += eval.mean_error;
        if narrate {
            println!(
                "  tick {:2}: {active:3} active (+{joined} -{left})  {:>8.2?}  mean error \
                 {:.3} m  [{:#018x}]",
                obs.tick,
                wall,
                eval.mean_error,
                solution_fingerprint(solution),
            );
        }
    }
    let n = trace.len() as f64;
    (wall_s / n, err_sum / n)
}

fn main() {
    const SEED: u64 = 2005;
    const TICKS: usize = 12;

    let scenario = MobilityScenario::town(SEED)
        .with_motion(MotionModel::RandomWalk { step_m: 0.5 })
        .with_churn(ChurnModel::light())
        .with_ticks(TICKS);
    let trace = scenario.trace(SEED);
    println!(
        "== {}: {TICKS} ticks, random-walk 0.5 m/tick, light churn ==",
        trace.name
    );

    let mut tracker = StreamingTracker::with_lss(TrackerConfig::new(SEED));
    let (warm_tick_s, warm_err) = drive(&mut tracker, &trace, true);
    println!(
        "warm-started: {} cold bootstrap + {} warm updates, {:.2} ms/tick, mean error {:.3} m",
        tracker.cold_solves(),
        tracker.warm_updates(),
        warm_tick_s * 1e3,
        warm_err,
    );

    // The reference arm: a churn threshold nothing satisfies forces a
    // from-scratch batch solve on every tick (same per-tick cold seeds).
    let mut cold = StreamingTracker::with_lss(
        TrackerConfig::new(SEED).with_churn_restart_fraction(f64::NEG_INFINITY),
    );
    let (cold_tick_s, cold_err) = drive(&mut cold, &trace, false);
    println!(
        "forced cold:  {} re-solves, {:.2} ms/tick, mean error {:.3} m",
        cold.cold_solves(),
        cold_tick_s * 1e3,
        cold_err,
    );
    println!(
        "=> warm path sustains {:.0} updates/s, {:.1}x faster than re-solving, at {:.2}x the \
         cold error",
        1.0 / warm_tick_s.max(1e-9),
        cold_tick_s / warm_tick_s.max(1e-9),
        warm_err / cold_err.max(1e-9),
    );
}
