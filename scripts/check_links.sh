#!/usr/bin/env bash
# Docs link check: fail if any relative markdown link points at a file
# that does not exist. External (http/https/mailto) links are skipped —
# CI has no network. Run from the repository root; CI runs this on every
# push (see .github/workflows/ci.yml).
set -euo pipefail

status=0
while IFS= read -r file; do
    # SNIPPETS.md and PAPERS.md quote third-party repo excerpts verbatim;
    # their relative links point into repos we do not vendor.
    case "$file" in
        SNIPPETS.md | PAPERS.md) continue ;;
    esac
    dir=$(dirname "$file")
    # Extract every ](target) markdown link target, strip anchors.
    while IFS= read -r target; do
        target=${target%%#*}
        [[ -z "$target" ]] && continue
        case "$target" in
            http://* | https://* | mailto:*) continue ;;
        esac
        if [[ ! -e "$dir/$target" && ! -e "$target" ]]; then
            echo "dead link in $file: $target" >&2
            status=1
        fi
    done < <(grep -oE '\]\([^)]+\)' "$file" | sed -E 's/^\]\(//; s/\)$//; s/[[:space:]]+"[^"]*"$//')
done < <(git ls-files '*.md')

if [[ $status -eq 0 ]]; then
    echo "all relative markdown links resolve"
fi
exit $status
