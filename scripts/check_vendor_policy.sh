#!/usr/bin/env bash
# Vendor-policy guard: the build environment has no network access to
# crates.io, so every external dependency is an offline API-compatible
# shim under vendor/ wired in as a path dependency (see
# docs/ARCHITECTURE.md, "Vendor policy"). This check fails if any
# manifest or the lockfile gains a crates.io registry dependency, so the
# invariant is enforced by CI instead of rediscovered as a broken build.
# Run from the repository root.
set -euo pipefail

status=0

# 1. The lockfile must not reference any registry (a registry package
#    records `source = "registry+..."`; path dependencies record none).
if grep -n 'source = "registry+' Cargo.lock >&2; then
    echo "Cargo.lock references a crates.io registry package (see above);" \
        "extend the vendor/ shims instead" >&2
    status=1
fi

# 2. No manifest may declare a version-only (registry) dependency.
#    Two TOML spellings exist and both are checked:
#    * inline sections (`[dependencies]`, `[dev-dependencies]`,
#      `[workspace.dependencies]`, `[target.X.dependencies]`, ...):
#      every line is one dependency and must carry `path = ...` or
#      `workspace = true` (the workspace table itself maps each name to
#      a vendor/ or crates/ path);
#    * single-dependency tables (`[dependencies.foo]`, ...): the table
#      as a whole must contain a `path = ...` or `workspace = true`
#      line (other lines — features, default-features — are fine).
while IFS= read -r manifest; do
    bad=$(awk '
        function report_table() {
            if (table_active && !table_ok) printf "%s", table_buf
            table_active = 0; table_ok = 0; table_buf = ""
        }
        /^\[/ {
            report_table()
            inline = ($0 ~ /(^\[|\.)(dev-|build-)?dependencies\]/)
            table_active = ($0 ~ /(^\[|\.)(dev-|build-)?dependencies\./)
            next
        }
        !NF || /^[[:space:]]*#/ { next }
        inline {
            if ($0 !~ /path[[:space:]]*=/ && $0 !~ /workspace[[:space:]]*=[[:space:]]*true/) {
                print FILENAME ":" FNR ": " $0
            }
        }
        table_active {
            table_buf = table_buf FILENAME ":" FNR ": " $0 "\n"
            if ($0 ~ /path[[:space:]]*=/ || $0 ~ /workspace[[:space:]]*=[[:space:]]*true/) {
                table_ok = 1
            }
        }
        END { report_table() }
    ' "$manifest")
    if [[ -n "$bad" ]]; then
        echo "$bad" >&2
        status=1
    fi
done < <(git ls-files '*Cargo.toml')

if [[ $status -ne 0 ]]; then
    echo "vendor policy violated: registry dependencies are not buildable" \
        "in this environment (no crates.io access)" >&2
    exit $status
fi
echo "vendor policy OK: all dependencies resolve to in-tree paths"
