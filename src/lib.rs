//! # Resilient Localization for Sensor Networks in Outdoor Environments
//!
//! A full Rust reproduction of Kwon, Mechitov, Sundresh, Kim and Agha,
//! *"Resilient Localization for Sensor Networks in Outdoor Environments"*
//! (ICDCS 2005): long-distance acoustic TDoA ranging plus a family of
//! localization algorithms — multilateration with intersection consistency
//! checking, centralized least-squares scaling (LSS) with minimum-spacing
//! soft constraints, and a distributed LSS variant — together with the
//! simulated substrates (acoustic channel, WSN radio network, deployment
//! generators) needed to evaluate them without MICA2 hardware.
//!
//! This facade crate re-exports the workspace crates under stable paths:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`math`] | `rl-math` | matrices, eigensolver, robust stats, gradient descent |
//! | [`geom`] | `rl-geom` | points, rigid transforms, circles, Procrustes |
//! | [`signal`] | `rl-signal` | acoustic channel, tone detection, chirp patterns |
//! | [`net`] | `rl-net` | discrete-event WSN simulator, time sync, flooding |
//! | [`ranging`] | `rl-ranging` | TDoA ranging service, filtering, consistency |
//! | [`deploy`] | `rl-deploy` | deployments, anchors, synthetic measurements, scenarios, mobility |
//! | [`localization`] | `rl-core` | multilateration, LSS, distributed LSS, MDS, tracking, `Problem`/`Localizer` |
//! | [`bench`](mod@bench) | `rl-bench` | campaign runner, experiment harness, figure reproductions |
//! | [`serve`] | `rl-serve` | TCP localization server: worker pool, request batching, solution cache |
//!
//! # Quickstart
//!
//! ```
//! use resilient_localization::prelude::*;
//!
//! // A 4x4 offset grid in the style of the paper's Figure 5, with
//! // synthetic ranging: true distances under 22 m + N(0, 0.33 m) noise.
//! let mut rng = rl_math::rng::seeded(7);
//! let field = rl_deploy::grid::OffsetGrid::new(4, 4, 9.144, 9.144).generate();
//! let measurements = rl_deploy::synth::SyntheticRanging::paper()
//!     .measure_all(&field.positions, &mut rng);
//!
//! // Centralized LSS with the minimum-spacing soft constraint.
//! let config = LssConfig::default().with_min_spacing(9.0, 10.0);
//! let solution = LssSolver::new(config).solve(&measurements, &mut rng)?;
//!
//! // Evaluate against ground truth (best-fit alignment, like the paper).
//! let eval = evaluate_against_truth(&solution.positions(), &field.positions)?;
//! assert!(eval.mean_error < 1.0, "average error {} m", eval.mean_error);
//! # Ok::<(), rl_core::LocalizationError>(())
//! ```
//!
//! # The unified solving API
//!
//! Every algorithm family also implements the object-safe
//! [`Localizer`](rl_core::problem::Localizer) trait over a shared
//! [`Problem`](rl_core::problem::Problem), and a
//! [`Campaign`](rl_bench::campaign::Campaign) sweeps
//! (scenarios × localizers × seeds) grids through it — sharded across a
//! worker pool, with a bit-identical report for any worker count:
//!
//! ```
//! use resilient_localization::prelude::*;
//!
//! // A named scenario instantiates directly into a solver-ready Problem.
//! let problem = rl_deploy::Scenario::parking_lot(7).instantiate(1);
//! let solvers: Vec<Box<dyn Localizer>> = vec![
//!     Box::new(LssSolver::new(LssConfig::default())),
//!     Box::new(MultilaterationSolver::new(MultilaterationConfig::paper())),
//! ];
//! let mut rng = rl_math::rng::seeded(1);
//! for solver in &solvers {
//!     let solution = solver.localize(&problem, &mut rng)?;
//!     let eval = problem.evaluate(&solution)?;
//!     println!("{}: {:.3} m", solver.name(), eval.mean_error);
//! }
//! # Ok::<(), LocalizationError>(())
//! ```

#![deny(missing_docs)]

pub use rl_bench as bench;
pub use rl_core as localization;
pub use rl_deploy as deploy;
pub use rl_geom as geom;
pub use rl_math as math;
pub use rl_net as net;
pub use rl_ranging as ranging;
pub use rl_serve as serve;
pub use rl_signal as signal;

/// Commonly used items, importable with one `use`.
///
/// Note that this re-exports [`rl_core::Result`], a one-parameter alias
/// over [`LocalizationError`](rl_core::LocalizationError); code that needs
/// the two-parameter form alongside the glob import should name
/// `std::result::Result` explicitly.
pub mod prelude {
    pub use rl_bench::campaign::{Campaign, CampaignConfig, CampaignReport, Chunking};
    pub use rl_core::baselines::{CentroidLocalizer, DvHopLocalizer};
    pub use rl_core::distributed::{DistributedConfig, DistributedSolver};
    pub use rl_core::eval::{evaluate_absolute, evaluate_against_truth, Evaluation};
    pub use rl_core::lss::{LssConfig, LssSolver};
    pub use rl_core::mds::MdsMapLocalizer;
    pub use rl_core::multilateration::{MultilaterationConfig, MultilaterationSolver};
    pub use rl_core::problem::{Frame, Localizer, Problem, Solution, SolveStats};
    pub use rl_core::tracking::{
        cold_seed, solution_fingerprint, StreamingTracker, TickObservation, Tracker, TrackerConfig,
    };
    pub use rl_core::types::{Anchor, NodeId, PositionMap};
    pub use rl_core::{LocalizationError, Result, RobustLoss};
    pub use rl_deploy::mobility::{ChurnModel, MobilityScenario, MobilityTrace, MotionModel};
    pub use rl_geom::{Point2, Vec2};
    pub use rl_math::sparse::cg::{
        conjugate_gradient, conjugate_gradient_with, resolve_preconditioner, CgConfig, CgOutcome,
        CgWorkspace, IncompleteCholesky, JacobiPreconditioner, Preconditioner, PreconditionerKind,
    };
    pub use rl_math::sparse::{
        dijkstra, dijkstra_multi_into, CsrMatrix, DijkstraWorkspace, LinearOperator,
    };
    pub use rl_ranging::measurement::{DirectedSample, MeasurementSet, RangingCampaign};
    pub use rl_serve::{Client, ServeConfig, Server, StreamSession};
    pub use rl_signal::env::Environment;
}
