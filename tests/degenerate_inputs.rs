//! Degenerate-input resilience: every solver family must fail *with a
//! structured error* — or return a solution containing only finite
//! positions — on inputs that break the geometric assumptions the
//! algorithms lean on. Panics and NaN positions are the two failure
//! modes these tests forbid:
//!
//! * **100% contamination**: every node compromised, every measurement
//!   `U(0, 60 m)` garbage (the degradation ladder's limit case),
//! * **zero measurements**: a deployment that produced no ranges at all,
//! * **collinear anchors**: every anchor on one line, so anchor-based
//!   position fixes have a reflection ambiguity everywhere.

use resilient_localization::prelude::*;
use rl_deploy::Scenario;
use rl_net::RadioModel;
use rl_ranging::channel::{ChannelStage, RangingChannel};

const RANGE_M: f64 = 22.0;

/// The full six-family panel, freshly boxed (solvers are stateless, but
/// `Box<dyn Localizer>` is not `Clone`).
fn panel() -> Vec<Box<dyn Localizer>> {
    vec![
        Box::new(LssSolver::new(LssConfig::metro())),
        Box::new(MultilaterationSolver::new(
            MultilaterationConfig::paper().progressive(),
        )),
        Box::new(DistributedSolver::new(DistributedConfig::metro())),
        Box::new(MdsMapLocalizer::new()),
        Box::new(DvHopLocalizer::new(RadioModel::ideal(RANGE_M))),
        Box::new(CentroidLocalizer::new(RANGE_M)),
    ]
}

/// Every family either returns a structured error or a solution whose
/// localized positions are all finite. Reaching the end of this function
/// is the assertion: no family panicked, no family emitted NaN.
fn assert_no_panic_no_nan(problem: &Problem, label: &str) {
    for solver in panel() {
        let mut rng = rl_math::rng::seeded(1);
        match solver.localize(problem, &mut rng) {
            Ok(solution) => {
                let positions = solution.positions();
                for i in 0..problem.node_count() {
                    if let Some(p) = positions.get(NodeId(i)) {
                        assert!(
                            p.x.is_finite() && p.y.is_finite(),
                            "{} on {label}: node {i} localized at non-finite {p:?}",
                            solver.name(),
                        );
                    }
                }
            }
            Err(e) => {
                // A structured error is the correct way to decline; it
                // must also render (no panicking Display impls).
                let _ = e.to_string();
            }
        }
    }
}

#[test]
fn all_families_survive_total_contamination() {
    // Every node compromised: every surviving pair is two compromised
    // endpoints, so the whole measurement set is uniform garbage.
    let scenario = Scenario::town(3).with_channel(RangingChannel::ideal(RANGE_M).with_stage(
        ChannelStage::Adversarial {
            node_fraction: 1.0,
            corruption_m: 60.0,
        },
    ));
    let problem = scenario.instantiate(3);
    assert!(!problem.measurements().is_empty(), "garbage is still data");
    assert_no_panic_no_nan(&problem, "100% contamination");
}

#[test]
fn all_families_survive_zero_measurements() {
    let truth: Vec<Point2> = (0..12)
        .map(|i| Point2::new((i % 4) as f64 * 9.0, (i / 4) as f64 * 9.0))
        .collect();
    let anchors = Anchor::from_truth(&[NodeId(0), NodeId(3), NodeId(5), NodeId(10)], &truth);
    let problem = Problem::builder(MeasurementSet::new(truth.len()))
        .name("zero-measurements")
        .anchors(anchors)
        .truth(truth)
        .build()
        .expect("an empty measurement set is a valid (if hopeless) problem");
    assert_eq!(problem.measurements().len(), 0);
    assert_no_panic_no_nan(&problem, "zero measurements");
}

#[test]
fn all_families_survive_collinear_anchors() {
    // A 4x4 grid whose four anchors all sit on the bottom row: every
    // anchor-based fix has a mirror ambiguity across that line.
    let truth: Vec<Point2> = (0..16)
        .map(|i| Point2::new((i % 4) as f64 * 9.0, (i / 4) as f64 * 9.0))
        .collect();
    let anchor_ids = [NodeId(0), NodeId(1), NodeId(2), NodeId(3)];
    let anchors = Anchor::from_truth(&anchor_ids, &truth);
    let measurements = MeasurementSet::oracle(&truth, 25.0);
    let problem = Problem::builder(measurements)
        .name("collinear-anchors")
        .anchors(anchors)
        .truth(truth)
        .build()
        .expect("collinear anchors are a valid problem");
    assert_no_panic_no_nan(&problem, "collinear anchors");
}
