//! Determinism contract: every stochastic component draws through an
//! explicit `rl_math::rng::seeded(..)` generator, so a fixed seed must make
//! the entire campaign → filter → solve pipeline reproduce **bit-identical**
//! position estimates run over run.

use resilient_localization::prelude::*;
use rl_core::lss::{LssConfig, LssSolver};
use rl_ranging::consistency::{merge_bidirectional, ConsistencyConfig};
use rl_ranging::filter::StatFilter;
use rl_ranging::service::{RangingService, ServiceConfig};

/// One full pipeline run (acoustic campaign through constrained LSS) from a
/// single seed, returning the raw estimated coordinates.
fn run_pipeline(seed: u64) -> Vec<(u64, u64)> {
    let mut rng = rl_math::rng::seeded(seed);
    let field = rl_deploy::grid::OffsetGrid::new(4, 4, 9.144, 9.144).generate();

    let service = RangingService::new(Environment::Grass, ServiceConfig::refined(), &mut rng)
        .expect("calibration succeeds on grass");
    let campaign = service.run_campaign(&field.positions, &mut rng);
    let estimates = StatFilter::Median.apply(&campaign);
    let set = merge_bidirectional(&estimates, campaign.n, &ConsistencyConfig::default());

    let config = LssConfig::default().with_min_spacing(9.14, 10.0);
    let solution = LssSolver::new(config)
        .solve(&set, &mut rng)
        .expect("solvable");
    solution
        .coordinates()
        .iter()
        .map(|p| (p.x.to_bits(), p.y.to_bits()))
        .collect()
}

/// Two runs with the same seed must agree bit-for-bit, not just to a
/// tolerance: any hidden nondeterminism (hash iteration order, thread
/// scheduling, uncontrolled entropy) would break equality here.
#[test]
fn same_seed_gives_bit_identical_estimates() {
    let first = run_pipeline(42);
    let second = run_pipeline(42);
    assert!(!first.is_empty());
    assert_eq!(first, second, "pipeline is not bit-deterministic");
}

/// Different seeds must actually change the noise realization (otherwise the
/// test above would pass vacuously on a seed-ignoring pipeline).
#[test]
fn different_seeds_give_different_estimates() {
    let a = run_pipeline(42);
    let b = run_pipeline(43);
    assert_ne!(a, b, "seed is being ignored somewhere in the pipeline");
}

/// The synthetic-ranging path (no acoustic simulation) obeys the same
/// contract, covering the generator used by the benches and examples.
#[test]
fn synthetic_ranging_is_bit_deterministic() {
    let measure = |seed: u64| {
        let mut rng = rl_math::rng::seeded(seed);
        let field = rl_deploy::grid::OffsetGrid::new(5, 5, 9.144, 9.144).generate();
        let set =
            rl_deploy::synth::SyntheticRanging::paper().measure_all(&field.positions, &mut rng);
        set.iter()
            .map(|(a, b, d)| (a.index(), b.index(), d.to_bits()))
            .collect::<Vec<_>>()
    };
    assert_eq!(measure(7), measure(7));
    assert_ne!(measure(7), measure(8));
}
