//! Determinism contract: every stochastic component draws through an
//! explicit `rl_math::rng::seeded(..)` generator, so a fixed seed must make
//! the entire campaign → filter → solve pipeline reproduce **bit-identical**
//! position estimates run over run.

use resilient_localization::prelude::*;
use rl_core::lss::{LssConfig, LssSolver};
use rl_ranging::consistency::{merge_bidirectional, ConsistencyConfig};
use rl_ranging::filter::StatFilter;
use rl_ranging::service::{RangingService, ServiceConfig};

/// One full pipeline run (acoustic campaign through constrained LSS) from a
/// single seed, returning the raw estimated coordinates.
fn run_pipeline(seed: u64) -> Vec<(u64, u64)> {
    let mut rng = rl_math::rng::seeded(seed);
    let field = rl_deploy::grid::OffsetGrid::new(4, 4, 9.144, 9.144).generate();

    let service = RangingService::new(Environment::Grass, ServiceConfig::refined(), &mut rng)
        .expect("calibration succeeds on grass");
    let campaign = service.run_campaign(&field.positions, &mut rng);
    let estimates = StatFilter::Median.apply(&campaign);
    let set = merge_bidirectional(&estimates, campaign.n, &ConsistencyConfig::default());

    let config = LssConfig::default().with_min_spacing(9.14, 10.0);
    let solution = LssSolver::new(config)
        .solve(&set, &mut rng)
        .expect("solvable");
    solution
        .coordinates()
        .iter()
        .map(|p| (p.x.to_bits(), p.y.to_bits()))
        .collect()
}

/// Two runs with the same seed must agree bit-for-bit, not just to a
/// tolerance: any hidden nondeterminism (hash iteration order, thread
/// scheduling, uncontrolled entropy) would break equality here.
#[test]
fn same_seed_gives_bit_identical_estimates() {
    let first = run_pipeline(42);
    let second = run_pipeline(42);
    assert!(!first.is_empty());
    assert_eq!(first, second, "pipeline is not bit-deterministic");
}

/// Different seeds must actually change the noise realization (otherwise the
/// test above would pass vacuously on a seed-ignoring pipeline).
#[test]
fn different_seeds_give_different_estimates() {
    let a = run_pipeline(42);
    let b = run_pipeline(43);
    assert_ne!(a, b, "seed is being ignored somewhere in the pipeline");
}

/// The parallel-execution clause of the seeding contract (rule 5 in
/// `rl_math::rng`): a campaign's report is **bit-identical** for any
/// worker count, because every grid cell owns a whole RNG stream derived
/// from `(trial seed, localizer index)` — never from scheduling — and
/// records are merged in canonical grid order. Asserted here for
/// `workers ∈ {1, 4}` on a multi-scenario, multi-seed grid, comparing
/// both the report fingerprints and the raw coordinate bits.
#[test]
fn campaign_reports_are_bit_identical_for_1_and_4_workers() {
    let campaign = Campaign::new()
        .scenario(rl_deploy::Scenario::parking_lot(9))
        .scenario(rl_deploy::Scenario::town(9))
        .localizer(Box::new(LssSolver::new(
            LssConfig::default().with_min_spacing(9.14, 10.0),
        )))
        .localizer(Box::new(MdsMapLocalizer::new()))
        .trials(9, 2);

    let coordinate_bits = |report: &CampaignReport| -> Vec<Vec<(u64, u64)>> {
        report
            .runs
            .iter()
            .map(|run| {
                let positions = run
                    .outcome
                    .as_ref()
                    .expect("solvable grid")
                    .solution
                    .positions();
                (0..positions.len())
                    .filter_map(|i| positions.get(NodeId(i)))
                    .map(|p| (p.x.to_bits(), p.y.to_bits()))
                    .collect()
            })
            .collect()
    };

    let one = campaign.run_with(CampaignConfig::default().with_workers(1));
    let four = campaign.run_with(CampaignConfig::default().with_workers(4));
    assert_eq!(one.workers, 1);
    assert_eq!(four.workers, 4, "4 instances keep a 4-worker pool full");
    assert_eq!(
        one.fingerprint(),
        four.fingerprint(),
        "worker count leaked into the campaign report"
    );
    assert_eq!(coordinate_bits(&one), coordinate_bits(&four));

    // Cell chunking is the other scheduling axis; it must not leak either.
    let cells = campaign.run_with(
        CampaignConfig::default()
            .with_workers(4)
            .with_chunking(Chunking::Cell),
    );
    assert_eq!(one.fingerprint(), cells.fingerprint());
}

/// The distributed pipeline's local-solve phase shards across the
/// `rl_net::pool` worker pool; its outcome must be **bit-identical** for
/// any worker count, because every node's solve draws from a stream
/// derived from `(run seed, node id)` — never from a generator shared
/// across nodes — and the pool returns results in node order regardless
/// of scheduling. Asserted for simulator worker counts ∈ {1, 4} on the
/// raw coordinate bits (with the Gauss–Newton/CG refinement stage
/// enabled, which is deterministic by construction).
#[test]
fn distributed_pipeline_bit_identical_for_1_and_4_workers() {
    use rl_core::distributed::{run_distributed, DistributedConfig};

    let field = rl_deploy::grid::OffsetGrid::new(5, 4, 9.144, 9.144).generate();
    let mut rng = rl_math::rng::seeded(31);
    let set = rl_deploy::synth::SyntheticRanging::paper().measure_all(&field.positions, &mut rng);

    let fingerprint = |workers: usize| -> Vec<Option<(u64, u64)>> {
        let mut rng = rl_math::rng::seeded(77);
        let config = DistributedConfig::default()
            .with_min_spacing(9.14, 10.0)
            .with_workers(workers);
        let out = run_distributed(&set, &field.positions, NodeId(5), &config, &mut rng)
            .expect("protocol runs");
        assert!(out.refine.is_some(), "refinement must have run");
        (0..field.positions.len())
            .map(|i| {
                out.positions
                    .get(NodeId(i))
                    .map(|p| (p.x.to_bits(), p.y.to_bits()))
            })
            .collect()
    };

    let one = fingerprint(1);
    let four = fingerprint(4);
    assert!(one.iter().flatten().count() > 0, "some nodes localized");
    assert_eq!(
        one, four,
        "worker count leaked into the distributed outcome"
    );
}

/// The synthetic-ranging path (no acoustic simulation) obeys the same
/// contract, covering the generator used by the benches and examples.
#[test]
fn synthetic_ranging_is_bit_deterministic() {
    let measure = |seed: u64| {
        let mut rng = rl_math::rng::seeded(seed);
        let field = rl_deploy::grid::OffsetGrid::new(5, 5, 9.144, 9.144).generate();
        let set =
            rl_deploy::synth::SyntheticRanging::paper().measure_all(&field.positions, &mut rng);
        set.iter()
            .map(|(a, b, d)| (a.index(), b.index(), d.to_bits()))
            .collect::<Vec<_>>()
    };
    assert_eq!(measure(7), measure(7));
    assert_ne!(measure(7), measure(8));
}
