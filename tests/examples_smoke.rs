//! Smoke tests running each `examples/` binary end to end via
//! `cargo run --example`, asserting the run exits cleanly and prints
//! non-empty, finite output (no NaN/inf leaking into the reports).

use std::process::Command;

/// Runs one example through the same cargo that is driving this test and
/// applies the shared output sanity checks.
fn run_example(name: &str) {
    let output = Command::new(env!("CARGO"))
        .args(["run", "--quiet", "--example", name])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn cargo for example {name}: {e}"));

    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "example {name} exited with {:?}\nstdout:\n{stdout}\nstderr:\n{stderr}",
        output.status.code()
    );
    assert!(
        stdout.trim().len() > 40,
        "example {name} printed almost nothing:\n{stdout}"
    );
    assert!(
        stdout.chars().any(|c| c.is_ascii_digit()),
        "example {name} printed no numbers:\n{stdout}"
    );
    for marker in ["NaN", "inf m", "-inf"] {
        assert!(
            !stdout.contains(marker),
            "example {name} printed a non-finite value ({marker}):\n{stdout}"
        );
    }
}

#[test]
fn quickstart_runs_and_prints_finite_output() {
    run_example("quickstart");
}

#[test]
fn acoustic_ranging_runs_and_prints_finite_output() {
    run_example("acoustic_ranging");
}

#[test]
fn grassy_field_runs_and_prints_finite_output() {
    run_example("grassy_field");
}

#[test]
fn city_blocks_runs_and_prints_finite_output() {
    run_example("city_blocks");
}

#[test]
fn sparse_kernels_runs_and_prints_finite_output() {
    run_example("sparse_kernels");
}

#[test]
fn compare_solvers_runs_and_prints_finite_output() {
    run_example("compare_solvers");
}

#[test]
fn serve_client_runs_and_prints_finite_output() {
    run_example("serve_client");
}

#[test]
fn tracking_runs_and_prints_finite_output() {
    run_example("tracking");
}
