//! Golden pins for the `rl_math::fingerprint` extraction.
//!
//! PR 7 moved the FNV-1a machinery behind
//! [`CampaignReport::fingerprint`](rl_bench::campaign::CampaignReport)
//! into the shared `rl_math::fingerprint` module so the serving layer can
//! key its solution cache on the same digests. These pins were generated
//! by the **pre-extraction** code on fixed seeds; the re-pointed
//! implementation must reproduce every one bit for bit, or a cache keyed
//! on the new digests would silently diverge from historical campaign
//! records.
//!
//! Golden values hash solver output driven by the vendored xoshiro256++
//! stream and are not portable to upstream `rand`.

use resilient_localization::prelude::*;

/// Pre-extraction fingerprint of the Figure-5 head-to-head campaign
/// (every solver family, seed 2005) — the canonical campaign the
/// comparison figures are built from.
const GOLDEN_FIGURE5_2005: u64 = 0x88f4_cf43_a63c_f68a;

/// Pre-extraction fingerprint of a two-scenario mixed grid (parking lot +
/// town, two seeds) covering anchored and anchor-free cells plus a
/// solver failure path (centroid on the anchor-free grass grid).
const GOLDEN_MIXED_GRID: u64 = 0x1bdb_b9f1_27ae_bb30;

fn mixed_grid() -> Campaign {
    Campaign::new()
        .scenario(rl_deploy::Scenario::parking_lot(7))
        .scenario(rl_deploy::Scenario::grass_grid())
        .localizer(Box::new(LssSolver::new(LssConfig::default())))
        .localizer(Box::new(CentroidLocalizer::new(22.0)))
        .seeds(&[1, 2])
}

#[test]
fn figure5_campaign_fingerprint_is_unchanged() {
    let report = rl_bench::campaign::figure5_head_to_head(2005).run();
    assert_eq!(
        report.fingerprint(),
        GOLDEN_FIGURE5_2005,
        "campaign fingerprint changed: got {:#018x}",
        report.fingerprint()
    );
}

#[test]
fn mixed_grid_fingerprint_is_unchanged() {
    let report = mixed_grid().run();
    assert_eq!(
        report.fingerprint(),
        GOLDEN_MIXED_GRID,
        "campaign fingerprint changed: got {:#018x}",
        report.fingerprint()
    );
}
