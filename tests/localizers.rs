//! Integration tests for the unified `Localizer` trait: every algorithm
//! family driven through `Box<dyn Localizer>` on one shared problem, plus
//! the Related-Work error ranking the paper's §2 comparison implies.

use resilient_localization::net::RadioModel;
use resilient_localization::prelude::*;

/// A 5x5 oracle grid (spacing 10 m) with the four corners as anchors:
/// exact distances below 25 m, anchors heard by everyone within 45 m.
fn oracle_grid_problem() -> Problem {
    let truth: Vec<Point2> = (0..25)
        .map(|i| Point2::new((i % 5) as f64 * 10.0, (i / 5) as f64 * 10.0))
        .collect();
    let anchors = Anchor::from_truth(&[NodeId(0), NodeId(4), NodeId(20), NodeId(24)], &truth);
    Problem::builder(MeasurementSet::oracle(&truth, 25.0))
        .name("oracle-5x5")
        .anchors(anchors)
        .truth(truth)
        .build()
        .expect("oracle grid is consistent")
}

fn solve_and_evaluate(localizer: &dyn Localizer, problem: &Problem, seed: u64) -> Evaluation {
    let mut rng = rl_math::rng::seeded(seed);
    let solution = localizer
        .localize(problem, &mut rng)
        .unwrap_or_else(|e| panic!("{} failed: {e}", localizer.name()));
    problem
        .evaluate(&solution)
        .unwrap_or_else(|e| panic!("{} evaluation failed: {e}", localizer.name()))
}

#[test]
fn baselines_rank_worse_than_lss_through_the_trait() {
    // The paper's Related-Work positioning: hop-count and connectivity
    // schemes are coarse compared with distance-based LSS, even on the
    // isotropic grid that favors DV-hop.
    let problem = oracle_grid_problem();
    let lss: Box<dyn Localizer> = Box::new(LssSolver::new(
        LssConfig::default().with_min_spacing(10.0, 10.0),
    ));
    let dv_hop: Box<dyn Localizer> = Box::new(DvHopLocalizer::new(RadioModel::ideal(15.0)));
    let centroid: Box<dyn Localizer> = Box::new(CentroidLocalizer::new(45.0));

    let lss_eval = solve_and_evaluate(lss.as_ref(), &problem, 1);
    let dv_hop_eval = solve_and_evaluate(dv_hop.as_ref(), &problem, 1);
    let centroid_eval = solve_and_evaluate(centroid.as_ref(), &problem, 1);

    assert!(lss_eval.mean_error < 0.5, "LSS {}", lss_eval.mean_error);
    assert!(
        lss_eval.mean_error < dv_hop_eval.mean_error,
        "LSS {} must beat DV-hop {}",
        lss_eval.mean_error,
        dv_hop_eval.mean_error
    );
    assert!(
        lss_eval.mean_error < centroid_eval.mean_error,
        "LSS {} must beat centroid {}",
        lss_eval.mean_error,
        centroid_eval.mean_error
    );
    // DV-hop uses distance estimates, centroid only connectivity: on an
    // isotropic grid the ranking between the two baselines holds as well.
    assert!(
        dv_hop_eval.mean_error < centroid_eval.mean_error,
        "DV-hop {} vs centroid {}",
        dv_hop_eval.mean_error,
        centroid_eval.mean_error
    );
}

#[test]
fn every_family_runs_as_a_trait_object() {
    // Trait-object safety: the whole comparison matrix behind one vtable.
    let localizers: Vec<Box<dyn Localizer>> = vec![
        Box::new(LssSolver::new(LssConfig::default())),
        Box::new(MultilaterationSolver::new(MultilaterationConfig::paper())),
        Box::new(MultilaterationSolver::new(
            MultilaterationConfig::paper().progressive(),
        )),
        Box::new(DistributedSolver::new(
            DistributedConfig::default().with_min_spacing(10.0, 10.0),
        )),
        Box::new(MdsMapLocalizer::new()),
        Box::new(DvHopLocalizer::new(RadioModel::ideal(15.0))),
        Box::new(CentroidLocalizer::new(45.0)),
    ];
    let names: Vec<&str> = localizers.iter().map(|l| l.name()).collect();
    assert_eq!(
        names,
        vec![
            "lss",
            "multilateration",
            "multilateration-progressive",
            "distributed-lss",
            "mds-map",
            "dv-hop",
            "centroid"
        ]
    );

    let problem = oracle_grid_problem();
    let mut rng = rl_math::rng::seeded(9);
    for localizer in &localizers {
        let solution = localizer
            .localize(&problem, &mut rng)
            .unwrap_or_else(|e| panic!("{} failed: {e}", localizer.name()));
        assert_eq!(solution.positions().len(), problem.node_count());
        assert!(
            solution.positions().localized_count() > 0,
            "{} localized nothing",
            localizer.name()
        );
    }
}

#[test]
fn anchored_lss_collapses_the_solve_split() {
    // Through the trait, the anchor set decides between the former
    // `solve` / `solve_anchored` entry points: with anchors the output is
    // already absolute, without it needs alignment.
    let problem = oracle_grid_problem();
    let solver = LssSolver::new(LssConfig::default());
    let mut rng = rl_math::rng::seeded(4);
    let anchored = Localizer::localize(&solver, &problem, &mut rng).expect("anchored solve");
    assert_eq!(anchored.frame(), Frame::Absolute);
    // Absolute evaluation (no alignment) must already be accurate.
    let eval = problem.evaluate(&anchored).expect("evaluable");
    assert!(eval.mean_error < 0.5, "anchored error {}", eval.mean_error);

    let anchor_free = Problem::builder(problem.measurements().clone())
        .truth(problem.truth().unwrap().to_vec())
        .build()
        .expect("consistent");
    let relative = Localizer::localize(&solver, &anchor_free, &mut rng).expect("anchor-free solve");
    assert_eq!(relative.frame(), Frame::Relative);
    assert!(
        anchor_free
            .evaluate(&relative)
            .expect("evaluable")
            .mean_error
            < 0.5,
        "aligned relative solve must be accurate"
    );

    // `anchor_free()` forces the paper's anchor-less operation even when
    // the problem supplies anchors (equal-footing comparisons).
    let forced = LssSolver::new(LssConfig::default().anchor_free());
    assert_eq!(Localizer::name(&forced), "lss-anchor-free");
    let solution = Localizer::localize(&forced, &problem, &mut rng).expect("solvable");
    assert_eq!(solution.frame(), Frame::Relative);
}

#[test]
fn stats_ride_along_with_solutions() {
    let problem = oracle_grid_problem();
    let mut rng = rl_math::rng::seeded(2);
    let solution = LssSolver::new(LssConfig::default())
        .localize(&problem, &mut rng)
        .expect("solvable");
    let stats = solution.stats();
    assert!(stats.iterations > 0, "LSS reports descent iterations");
    let stress = stats.residual.expect("LSS reports stress");
    assert!(stress.is_finite() && stress >= 0.0);

    let closed_form = MdsMapLocalizer::new()
        .localize(&problem, &mut rng)
        .expect("solvable");
    assert_eq!(closed_form.stats().iterations, 0);
    assert!(closed_form.stats().residual.is_none());
}
