//! Cross-crate integration tests: the full field pipeline from acoustic
//! simulation through localization and evaluation.

use resilient_localization::prelude::*;
use rl_core::lss::{LssConfig, LssSolver};
use rl_ranging::consistency::{merge_bidirectional, ConsistencyConfig};
use rl_ranging::filter::StatFilter;
use rl_ranging::service::{RangingService, ServiceConfig};

/// The complete grass pipeline on a small grid must reach sub-meter
/// localization: ranging simulation → median filter → consistency merge →
/// constrained LSS → best-fit evaluation.
#[test]
fn acoustic_to_position_pipeline() {
    let mut rng = rl_math::rng::seeded(1001);
    let field = rl_deploy::grid::OffsetGrid::new(4, 4, 9.144, 9.144).generate();

    let service = RangingService::new(Environment::Grass, ServiceConfig::refined(), &mut rng)
        .expect("calibration succeeds on grass");
    let campaign = service.run_campaign(&field.positions, &mut rng);
    assert!(
        campaign.samples.len() > 300,
        "expected a dense campaign, got {}",
        campaign.samples.len()
    );

    let estimates = StatFilter::Median.apply(&campaign);
    let set = merge_bidirectional(&estimates, campaign.n, &ConsistencyConfig::default());
    assert!(
        set.average_degree() > 3.0,
        "degree {}",
        set.average_degree()
    );

    let config = LssConfig::default().with_min_spacing(9.14, 10.0);
    let solution = LssSolver::new(config)
        .solve(&set, &mut rng)
        .expect("solvable");
    let eval = evaluate_against_truth(&solution.positions(), &field.positions).expect("evaluable");
    assert_eq!(eval.localized, field.len(), "LSS localizes everyone");
    assert!(
        eval.mean_error < 1.2,
        "pipeline mean error {} m",
        eval.mean_error
    );
}

/// The same measurement set must feed both multilateration and LSS, and
/// anchor-free LSS must localize more nodes than sparse multilateration.
#[test]
fn lss_beats_multilateration_on_sparse_data() {
    let mut rng = rl_math::rng::seeded(1002);
    let scenario = rl_deploy::Scenario::grass_grid_multilateration(1002);
    let truth = &scenario.deployment.positions;

    let service = RangingService::new(Environment::Grass, ServiceConfig::refined(), &mut rng)
        .expect("calibration succeeds");
    let campaign = service.run_campaign(truth, &mut rng);
    let estimates = StatFilter::Median.apply(&campaign);
    let set = merge_bidirectional(&estimates, campaign.n, &ConsistencyConfig::default());

    let anchors = Anchor::from_truth(&scenario.anchors, truth);
    let multi = MultilaterationSolver::new(MultilaterationConfig::paper())
        .solve(&set, &anchors, &mut rng)
        .expect("enough anchors");
    // Multilateration: anchors "localized" for free, many non-anchors not.
    let non_anchor_localized = multi
        .positions
        .localized_nodes()
        .iter()
        .filter(|id| !scenario.anchors.contains(id))
        .count();

    let lss = LssSolver::new(LssConfig::default().with_min_spacing(9.14, 10.0))
        .solve(&set, &mut rng)
        .expect("solvable");
    let eval = evaluate_against_truth(&lss.positions(), truth).expect("evaluable");

    assert!(
        eval.localized > non_anchor_localized,
        "LSS localized {} vs multilateration {non_anchor_localized}",
        eval.localized
    );
    assert_eq!(eval.localized, truth.len());
}

/// Synthetic town data end-to-end through the distributed protocol.
#[test]
fn distributed_protocol_on_town() {
    let mut rng = rl_math::rng::seeded(1003);
    let scenario = rl_deploy::Scenario::town(1003);
    let truth = &scenario.deployment.positions;
    let set = rl_deploy::SyntheticRanging::paper().measure_all(truth, &mut rng);

    let config = rl_core::distributed::DistributedConfig::default().with_min_spacing(9.0, 10.0);
    let out = rl_core::distributed::run_distributed(&set, truth, NodeId(0), &config, &mut rng)
        .expect("protocol runs");
    assert!(
        out.positions.localized_count() as f64 >= 0.9 * truth.len() as f64,
        "only {} of {} localized",
        out.positions.localized_count(),
        truth.len()
    );
    let eval = evaluate_against_truth(&out.positions, truth).expect("evaluable");
    assert!(
        eval.mean_error < 1.0,
        "distributed error {} m",
        eval.mean_error
    );
    assert!(
        out.messages_delivered > truth.len(),
        "protocol exchanged messages"
    );
}

/// Determinism across the whole stack: same seed, same result.
#[test]
fn full_pipeline_is_deterministic() {
    let run = || {
        let mut rng = rl_math::rng::seeded(1004);
        let field = rl_deploy::grid::OffsetGrid::new(3, 3, 9.144, 9.144).generate();
        let set = rl_deploy::SyntheticRanging::paper().measure_all(&field.positions, &mut rng);
        let solution = LssSolver::new(LssConfig::default().with_min_spacing(9.14, 10.0))
            .solve(&set, &mut rng)
            .expect("solvable");
        solution.coordinates().to_vec()
    };
    assert_eq!(run(), run());
}

/// Serde round-trips across crate boundaries: a scenario and its
/// measurement set survive JSON.
#[test]
fn cross_crate_serde_roundtrip() {
    let mut rng = rl_math::rng::seeded(1005);
    let scenario = rl_deploy::Scenario::parking_lot(1005);
    let set =
        rl_deploy::SyntheticRanging::paper().measure_all(&scenario.deployment.positions, &mut rng);

    let json = serde_json::to_string(&(&scenario, &set)).expect("serializes");
    let (scenario2, set2): (rl_deploy::Scenario, MeasurementSet) =
        serde_json::from_str(&json).expect("deserializes");
    assert_eq!(scenario, scenario2);
    assert_eq!(set, set2);
}
