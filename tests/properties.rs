//! Cross-crate property-based tests on algorithm invariants.

use proptest::prelude::*;
use resilient_localization::prelude::*;
use rl_core::lss::{LssConfig, LssObjective, LssSolver, SoftConstraint};
use rl_geom::{RigidTransform, Vec2};
use rl_math::gradient::Objective;
use rl_net::NodeId as NetNodeId;

fn measurement_set(
    pts: &[(f64, f64)],
    edges: &[(usize, usize)],
    noise: &[f64],
) -> (Vec<Point2>, MeasurementSet) {
    let truth: Vec<Point2> = pts.iter().map(|&(x, y)| Point2::new(x, y)).collect();
    let mut set = MeasurementSet::new(truth.len());
    for (k, &(a, b)) in edges.iter().enumerate() {
        if a == b || a >= truth.len() || b >= truth.len() {
            continue;
        }
        let d = truth[a].distance(truth[b]);
        if d < 1e-6 {
            continue;
        }
        let noisy = (d + noise[k % noise.len()]).max(0.05);
        set.insert(NetNodeId(a), NetNodeId(b), noisy);
    }
    (truth, set)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The LSS gradient always matches finite differences, for arbitrary
    /// sparse graphs, weights, and constraint settings.
    #[test]
    fn lss_gradient_matches_finite_differences(
        pts in proptest::collection::vec((-30.0f64..30.0, -30.0f64..30.0), 4..8),
        edges in proptest::collection::vec((0usize..8, 0usize..8), 3..16),
        noise in proptest::collection::vec(-0.5f64..0.5, 4),
        constrained in proptest::bool::ANY,
        x0 in proptest::collection::vec(-40.0f64..40.0, 16),
    ) {
        let (truth, set) = measurement_set(&pts, &edges, &noise);
        prop_assume!(set.len() >= 2);
        let soft = constrained.then_some(SoftConstraint {
            min_spacing_m: 7.0,
            weight: 10.0,
        });
        let obj = LssObjective::new(&set, soft);
        let n = truth.len();
        let x: Vec<f64> = x0.iter().take(2 * n).cloned().collect();
        prop_assume!(x.len() == 2 * n);
        let mut grad = vec![0.0; 2 * n];
        obj.gradient(&x, &mut grad);
        let h = 1e-6;
        for k in 0..x.len() {
            let mut xp = x.clone();
            xp[k] += h;
            let mut xm = x.clone();
            xm[k] -= h;
            let numeric = (obj.value(&xp) - obj.value(&xm)) / (2.0 * h);
            // Skip points near the constraint kink (non-differentiable).
            if (grad[k] - numeric).abs() > 1e-3 * (1.0 + numeric.abs()) {
                // Verify we are near a kink: re-check with a shifted point.
                let mut x2 = x.clone();
                x2[k] += 0.01;
                let mut g2 = vec![0.0; 2 * n];
                obj.gradient(&x2, &mut g2);
                let numeric2 = {
                    let mut xp = x2.clone();
                    xp[k] += h;
                    let mut xm = x2.clone();
                    xm[k] -= h;
                    (obj.value(&xp) - obj.value(&xm)) / (2.0 * h)
                };
                prop_assert!(
                    (g2[k] - numeric2).abs() <= 1e-3 * (1.0 + numeric2.abs()),
                    "gradient mismatch persists away from kink: {} vs {}",
                    g2[k],
                    numeric2
                );
            }
        }
    }

    /// Evaluation after best-fit alignment is invariant under any rigid
    /// transform of the estimated coordinates.
    #[test]
    fn evaluation_is_rigid_invariant(
        pts in proptest::collection::vec((-30.0f64..30.0, -30.0f64..30.0), 3..12),
        errors in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 12),
        theta in -3.0f64..3.0,
        reflected in proptest::bool::ANY,
        tx in -50.0f64..50.0,
        ty in -50.0f64..50.0,
    ) {
        let truth: Vec<Point2> = pts.iter().map(|&(x, y)| Point2::new(x, y)).collect();
        let estimate: Vec<Point2> = truth
            .iter()
            .zip(errors.iter().cycle())
            .map(|(&p, &(ex, ey))| Point2::new(p.x + ex, p.y + ey))
            .collect();
        // Estimates must not be all-coincident for alignment to exist.
        let mu = rl_geom::centroid(&estimate).unwrap();
        prop_assume!(estimate.iter().map(|p| p.distance_sq(mu)).sum::<f64>() > 1e-3);

        let base = evaluate_against_truth(&PositionMap::complete(estimate.clone()), &truth)
            .unwrap();
        let t = RigidTransform::new(theta, reflected, Vec2::new(tx, ty));
        let moved: Vec<Point2> = estimate.iter().map(|&p| t.apply(p)).collect();
        let moved_eval =
            evaluate_against_truth(&PositionMap::complete(moved), &truth).unwrap();
        prop_assert!(
            (base.mean_error - moved_eval.mean_error).abs() < 1e-6 * (1.0 + base.mean_error),
            "alignment not invariant: {} vs {}",
            base.mean_error,
            moved_eval.mean_error
        );
    }

    /// An LSS solution's stress never exceeds the stress of the ground
    /// truth configuration by more than the restart tolerance (on exact
    /// measurements, truth is a global minimum with stress ~0).
    #[test]
    fn lss_reaches_global_minimum_on_exact_triangle_meshes(
        nx in 2usize..4,
        ny in 2usize..3,
        spacing in 5.0f64..12.0,
        seed in 0u64..50,
    ) {
        let truth: Vec<Point2> = (0..nx * ny)
            .map(|i| Point2::new((i % nx) as f64 * spacing, (i / nx) as f64 * spacing))
            .collect();
        let set = MeasurementSet::oracle(&truth, spacing * 2.5);
        prop_assume!(set.len() >= 2 * truth.len() - 3); // generically rigid
        let mut rng = rl_math::rng::seeded(seed);
        let sol = LssSolver::new(LssConfig::default().with_min_spacing(spacing * 0.9, 10.0))
            .solve(&set, &mut rng)
            .unwrap();
        prop_assert!(sol.stress() < 0.5 * set.len() as f64, "stress {}", sol.stress());
    }

    /// Metro-generated deployments stay connected under the paper's 22 m
    /// ranging cutoff — across district-grid shapes, subsample fractions
    /// down to half the candidates, and seeds — and carry exactly the
    /// requested anchor fraction. (Connectivity is what makes the
    /// metro-scale campaign cells solvable at all: one severed district
    /// and every protocol-driven localizer degrades to its island.)
    #[test]
    fn metro_deployments_are_connected_with_requested_anchor_fraction(
        districts_x in 1usize..4,
        districts_y in 1usize..3,
        fill in 0.5f64..0.95,
        anchor_fraction in 0.05f64..0.25,
        seed in 0u64..1000,
    ) {
        let map = rl_deploy::MetroMap::default_metro()
            .with_districts(districts_x, districts_y);
        let nodes = (map.capacity() as f64 * fill) as usize;
        let scenario =
            rl_deploy::Scenario::metro_custom(map, nodes, anchor_fraction, seed);
        prop_assert_eq!(scenario.deployment.len(), nodes);

        let expected_anchors = (nodes as f64 * anchor_fraction).round() as usize;
        prop_assert_eq!(scenario.anchors.len(), expected_anchors);
        prop_assert!(scenario
            .anchors
            .iter()
            .all(|a| a.index() < nodes));

        let topo = rl_net::Topology::from_positions(&scenario.deployment.positions, 22.0);
        prop_assert!(
            topo.is_connected(),
            "{} nodes over {}x{} districts disconnected under 22 m",
            nodes, districts_x, districts_y
        );
    }

    /// Distances between solved coordinates reproduce the measurements
    /// (up to noise scale) whenever the solver reports low stress.
    #[test]
    fn low_stress_implies_distance_fidelity(
        seed in 0u64..30,
    ) {
        let truth: Vec<Point2> = (0..9)
            .map(|i| Point2::new((i % 3) as f64 * 9.0, (i / 3) as f64 * 9.0))
            .collect();
        let mut rng = rl_math::rng::seeded(seed);
        let set = rl_deploy::SyntheticRanging::new(25.0, 0.2).measure_all(&truth, &mut rng);
        let sol = LssSolver::new(LssConfig::default().with_min_spacing(9.0, 10.0))
            .solve(&set, &mut rng)
            .unwrap();
        if sol.stress() < 0.5 * set.len() as f64 {
            for (a, b, d) in set.iter() {
                let dc = sol.coordinates()[a.index()].distance(sol.coordinates()[b.index()]);
                prop_assert!(
                    (dc - d).abs() < 1.5,
                    "pair {a}-{b}: solved {dc:.2} vs measured {d:.2}"
                );
            }
        }
    }
}
