//! Failure-injection integration tests: the paper's resilience claims
//! under deliberately hostile measurement conditions.

use resilient_localization::prelude::*;
use rl_core::lss::{LssConfig, LssSolver, RobustReweight};

fn grid(nx: usize, ny: usize, spacing: f64) -> Vec<Point2> {
    (0..nx * ny)
        .map(|i| Point2::new((i % nx) as f64 * spacing, (i / nx) as f64 * spacing))
        .collect()
}

/// LSS keeps working as measurements are deleted, down to a sparse graph —
/// the paper's "resilient against sparse range measurements".
#[test]
fn lss_degrades_gracefully_with_sparsity() {
    let truth = grid(4, 4, 9.0);
    let mut rng = rl_math::rng::seeded(2001);
    let full = rl_deploy::SyntheticRanging::new(40.0, 0.2).measure_all(&truth, &mut rng);

    for keep_fraction in [1.0f64, 0.7, 0.5] {
        // Keep a deterministic stride of pairs (spread over the graph, so
        // the remainder stays roughly uniform rather than clustered).
        let mut sparse = MeasurementSet::new(truth.len());
        let all: Vec<_> = full.iter().collect();
        for (i, &(a, b, d)) in all.iter().enumerate() {
            if (i as f64 * keep_fraction).fract() < keep_fraction {
                sparse.insert(a, b, d);
            }
        }
        let config = LssConfig::default().with_min_spacing(9.0, 10.0);
        let solution = LssSolver::new(config)
            .solve(&sparse, &mut rng)
            .expect("solvable");
        let eval = evaluate_against_truth(&solution.positions(), &truth).expect("evaluable");
        assert!(
            eval.mean_error < 1.5,
            "at {:.0}% density the error blew up to {} m",
            keep_fraction * 100.0,
            eval.mean_error
        );
    }
}

/// A handful of catastrophic outliers must not wreck robust LSS.
#[test]
fn robust_lss_survives_outlier_injection() {
    let truth = grid(4, 4, 9.0);
    let mut rng = rl_math::rng::seeded(2002);
    let mut set = rl_deploy::SyntheticRanging::new(25.0, 0.2).measure_all(&truth, &mut rng);

    // Corrupt 5% of the edges with echo-style gross underestimates.
    let edges: Vec<_> = set.iter().collect();
    for (k, &(a, b, d)) in edges.iter().enumerate() {
        if k % 20 == 0 {
            set.insert(a, b, (d * 0.25).max(0.5));
        }
    }

    let config = LssConfig::default()
        .with_min_spacing(9.0, 10.0)
        .with_robust_reweight(RobustReweight::default());
    let solution = LssSolver::new(config)
        .solve(&set, &mut rng)
        .expect("solvable");
    let eval = evaluate_against_truth(&solution.positions(), &truth).expect("evaluable");
    assert!(
        eval.mean_error < 1.0,
        "robust LSS error {} m under 5% gross outliers",
        eval.mean_error
    );
}

/// Node failures: localization continues for survivors when nodes vanish.
#[test]
fn lss_tolerates_node_failures() {
    let full_truth = grid(5, 4, 9.0);
    let deployment = rl_deploy::Deployment::new("failure-test", full_truth);
    // Three nodes die before ranging.
    let survivors = deployment.without_nodes(&[3, 9, 17]);
    let mut rng = rl_math::rng::seeded(2003);
    let set = rl_deploy::SyntheticRanging::paper().measure_all(&survivors.positions, &mut rng);

    let config = LssConfig::default().with_min_spacing(9.0, 10.0);
    let solution = LssSolver::new(config)
        .solve(&set, &mut rng)
        .expect("solvable");
    let eval =
        evaluate_against_truth(&solution.positions(), &survivors.positions).expect("evaluable");
    assert_eq!(eval.localized, survivors.len());
    assert!(eval.mean_error < 1.0, "error {} m", eval.mean_error);
}

/// Multilateration under lossy radio and sparse anchors refuses to invent
/// positions (no gross errors among the nodes it does localize, thanks to
/// consistency checking and ambiguity rejection).
#[test]
fn multilateration_does_not_invent_positions() {
    let truth = grid(5, 4, 9.0);
    let mut rng = rl_math::rng::seeded(2004);
    let set = rl_deploy::SyntheticRanging::new(15.0, 0.33).measure_all(&truth, &mut rng);

    let anchor_ids = [NodeId(0), NodeId(4), NodeId(15), NodeId(19), NodeId(7)];
    let anchors = Anchor::from_truth(&anchor_ids, &truth);
    let out = MultilaterationSolver::new(MultilaterationConfig::paper())
        .solve(&set, &anchors, &mut rng)
        .expect("enough anchors");

    for (id, pos) in out.positions.iter() {
        if anchor_ids.contains(&id) {
            continue;
        }
        if let Some(p) = pos {
            let err = p.distance(truth[id.index()]);
            assert!(
                err < 3.0,
                "{id} localized {err:.1} m off — should have been rejected instead"
            );
        }
    }
}

/// A node with zero usable neighbors (no ranging pairs, no radio
/// contact) cannot build a local map or hear the alignment flood; the
/// rest of the network must localize around it, and the refinement
/// stage must leave the unlocalized node untouched instead of inventing
/// a position for it.
#[test]
fn distributed_tolerates_node_with_zero_neighbors() {
    use rl_core::distributed::{run_distributed, DistributedConfig};
    let mut truth = grid(4, 4, 9.0);
    truth.push(Point2::new(500.0, 500.0)); // far beyond ranging and radio
    let mut rng = rl_math::rng::seeded(2006);
    let set = rl_deploy::SyntheticRanging::paper().measure_all(&truth, &mut rng);
    assert_eq!(set.degree(NodeId(16)), 0, "the outlier must be isolated");

    let config = DistributedConfig::default().with_min_spacing(9.0, 10.0);
    let out = run_distributed(&set, &truth, NodeId(5), &config, &mut rng).expect("protocol runs");
    assert_eq!(out.local_maps_built, 16, "only the connected nodes map");
    assert_eq!(out.positions.get(NodeId(16)), None, "no invented position");
    assert!(out.positions.localized_count() >= 14);
    let eval = evaluate_against_truth(&out.positions, &truth).expect("evaluable");
    assert!(eval.mean_error < 1.0, "error {} m", eval.mean_error);
}

/// A disconnected district — internally dense, but with no measurements
/// or radio path to the root's district — must stay unlocalized while
/// the root's district localizes to meter level (the refinement stage
/// operates on the aligned component alone).
#[test]
fn distributed_survives_disconnected_district() {
    use rl_core::distributed::{run_distributed, DistributedConfig};
    let mut truth = grid(4, 3, 9.0);
    let far: Vec<Point2> = grid(3, 3, 9.0)
        .iter()
        .map(|p| Point2::new(p.x + 400.0, p.y + 400.0))
        .collect();
    truth.extend(far);
    let mut rng = rl_math::rng::seeded(2007);
    let set = rl_deploy::SyntheticRanging::paper().measure_all(&truth, &mut rng);

    let config = DistributedConfig::default().with_min_spacing(9.0, 10.0);
    let out = run_distributed(&set, &truth, NodeId(0), &config, &mut rng).expect("protocol runs");
    assert_eq!(out.local_maps_built, 21, "both districts map locally");
    for i in 12..21 {
        assert_eq!(
            out.positions.get(NodeId(i)),
            None,
            "node {i} is unreachable from the root and must stay unlocalized"
        );
    }
    assert!(out.positions.localized_count() >= 10);
    let eval = evaluate_against_truth(&out.positions, &truth).expect("evaluable");
    assert!(eval.mean_error < 1.0, "error {} m", eval.mean_error);
}

/// The distributed protocol survives radio loss: with 20% packet loss the
/// flood still aligns the large majority of nodes.
#[test]
fn distributed_survives_lossy_radio() {
    use rl_core::distributed::{run_distributed, DistributedConfig};
    let truth = grid(4, 4, 9.0);
    let mut rng = rl_math::rng::seeded(2005);
    let set = rl_deploy::SyntheticRanging::paper().measure_all(&truth, &mut rng);

    let config = DistributedConfig {
        radio: rl_net::RadioModel {
            loss_probability: 0.2,
            ..rl_net::RadioModel::mica2()
        },
        ..DistributedConfig::default().with_min_spacing(9.0, 10.0)
    };
    let out = run_distributed(&set, &truth, NodeId(5), &config, &mut rng).expect("protocol runs");
    assert!(
        out.positions.localized_count() >= 12,
        "only {} of 16 aligned under 20% loss",
        out.positions.localized_count()
    );
}
