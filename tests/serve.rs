//! Loopback-TCP integration tests for the serving layer: concurrency,
//! caching, batching, lifecycle, and bad-input handling, all against a
//! real server on an ephemeral port.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use resilient_localization::serve::client::{Client, ClientError};
use resilient_localization::serve::protocol::{
    self, batch, ErrorCode, Request, Response, PROTOCOL_VERSION,
};
use resilient_localization::serve::server::solve_direct;
use resilient_localization::serve::{ServeConfig, Server};

const SEED: u64 = 20050614;

/// Positions must match at the bit level, not just `==` (which would
/// accept `0.0 == -0.0`).
fn assert_reply_bitwise(
    served: &resilient_localization::serve::LocalizeReply,
    direct: &resilient_localization::serve::LocalizeReply,
) {
    assert_eq!(served, direct);
    for (a, b) in served.positions.iter().zip(&direct.positions) {
        match (a, b) {
            (Some(a), Some(b)) => {
                assert_eq!(a.0.to_bits(), b.0.to_bits());
                assert_eq!(a.1.to_bits(), b.1.to_bits());
            }
            (None, None) => {}
            _ => panic!("localization sets diverged"),
        }
    }
}

#[test]
fn concurrent_clients_get_bitwise_direct_results() {
    let (addr, handle) = Server::spawn(ServeConfig::default()).unwrap();
    // >= 4 concurrent clients, distinct triples, all checked against the
    // in-process solve.
    let triples = [
        ("parking-lot", "multilateration", 1),
        ("town", "centroid", 2),
        ("grass-grid", "lss", 3),
        ("parking-lot", "dv-hop", 4),
        ("town", "mds-map", 5),
    ];
    let served: Vec<_> = triples
        .map(|(deployment, solver, seed)| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                client.localize(deployment, solver, seed).unwrap()
            })
        })
        .into_iter()
        .map(|t| t.join().unwrap())
        .collect();
    for ((deployment, solver, seed), reply) in triples.iter().zip(&served) {
        let direct = solve_direct(deployment, solver, *seed).unwrap();
        assert_reply_bitwise(reply, &direct);
        assert_eq!(&reply.deployment, deployment);
        assert_eq!(&reply.solver, solver);
        assert_eq!(reply.seed, *seed);
    }
    let mut client = Client::connect(addr).unwrap();
    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn repeats_hit_the_cache_with_byte_identical_frames() {
    let (addr, handle) = Server::spawn(ServeConfig::default()).unwrap();
    let mut client = Client::connect(addr).unwrap();
    let request = Request::localize("parking-lot", "centroid", SEED);
    let cold = client.request_raw(&request).unwrap();
    let before = client.status().unwrap();
    let repeat = client.request_raw(&request).unwrap();
    let after = client.status().unwrap();

    assert_eq!(cold, repeat, "cached frame must be byte-identical");
    assert_eq!(
        after.cache_hits,
        before.cache_hits + 1,
        "the repeat must be served from cache"
    );
    assert_eq!(after.solves, before.solves, "no new solve for a repeat");
    // A different seed is a different cache entry.
    let other = client
        .localize("parking-lot", "centroid", SEED + 1)
        .unwrap();
    assert_ne!(
        Some(other.seed),
        protocol::decode::<Response>(&cold)
            .ok()
            .and_then(|r| match r {
                Response::Batch(batch::Response::Localized(reply)) => Some(reply.seed),
                _ => None,
            })
    );
    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn duplicate_requests_coalesce_into_fewer_solves() {
    // One worker + a solve floor: a blocker occupies the worker, then
    // duplicates pile up behind it and must share a single solve.
    let config = ServeConfig::default()
        .with_workers(1)
        .with_solve_floor(Duration::from_millis(200));
    let (addr, handle) = Server::spawn(config).unwrap();
    let blocker = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        // Distinct triple so it occupies the worker without touching the
        // duplicates' cache entry (centroid needs anchors, so not
        // grass-grid).
        client.localize("parking-lot", "centroid", 99).unwrap();
    });
    let mut control = Client::connect(addr).unwrap();
    while control.status().unwrap().solves_started < 1 {
        std::thread::sleep(Duration::from_millis(5));
    }

    const DUPLICATES: u64 = 5;
    let waiters: Vec<_> = (0..DUPLICATES)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                client.localize("town", "centroid", SEED).unwrap()
            })
        })
        .collect();
    let replies: Vec<_> = waiters.into_iter().map(|t| t.join().unwrap()).collect();
    blocker.join().unwrap();

    let stats = control.status().unwrap();
    control.shutdown().unwrap();
    handle.join().unwrap().unwrap();

    assert!(
        stats.solves < stats.requests,
        "coalescing must keep solves ({}) strictly below requests ({})",
        stats.solves,
        stats.requests
    );
    assert_eq!(stats.solves, 2, "blocker + one shared solve");
    assert!(stats.coalesced >= 1, "at least one request must coalesce");
    assert_eq!(
        stats.coalesced + stats.cache_hits,
        DUPLICATES - 1,
        "every duplicate but the first is coalesced or cache-served"
    );
    let direct = solve_direct("town", "centroid", SEED).unwrap();
    for reply in &replies {
        assert_reply_bitwise(reply, &direct);
    }
}

#[test]
fn unknown_names_get_typed_errors_and_the_connection_survives() {
    let (addr, handle) = Server::spawn(ServeConfig::default()).unwrap();
    let mut client = Client::connect(addr).unwrap();

    match client.localize("atlantis", "lss", 1) {
        Err(ClientError::Server(e)) => assert_eq!(e.code, ErrorCode::UnknownDeployment),
        other => panic!("expected a typed UnknownDeployment error, got {other:?}"),
    }
    match client.localize("town", "oracle", 1) {
        Err(ClientError::Server(e)) => assert_eq!(e.code, ErrorCode::UnknownSolver),
        other => panic!("expected a typed UnknownSolver error, got {other:?}"),
    }
    // Same connection still serves good requests afterwards.
    let reply = client.localize("parking-lot", "centroid", 1).unwrap();
    assert!(reply.localized > 0);
    let stats = client.status().unwrap();
    assert!(stats.errors >= 2);

    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn malformed_frames_get_typed_errors_without_dropping_the_connection() {
    let (addr, handle) = Server::spawn(ServeConfig::default()).unwrap();
    let mut stream = TcpStream::connect(addr).unwrap();

    // Valid frame, invalid payload (not JSON at all).
    protocol::write_frame(&mut stream, b"definitely not json", usize::MAX).unwrap();
    let payload = protocol::read_frame(&mut stream, usize::MAX)
        .unwrap()
        .unwrap();
    match protocol::decode::<Response>(&payload).unwrap() {
        Response::Error(e) => assert_eq!(e.code, ErrorCode::MalformedFrame),
        other => panic!("expected MalformedFrame, got {other:?}"),
    }

    // Valid JSON of the wrong shape.
    protocol::write_frame(&mut stream, br#"{"Nonsense":{"x":1}}"#, usize::MAX).unwrap();
    let payload = protocol::read_frame(&mut stream, usize::MAX)
        .unwrap()
        .unwrap();
    match protocol::decode::<Response>(&payload).unwrap() {
        Response::Error(e) => assert_eq!(e.code, ErrorCode::MalformedFrame),
        other => panic!("expected MalformedFrame, got {other:?}"),
    }

    // The same raw connection still works (framing never desynced).
    protocol::send(
        &mut stream,
        &Request::Batch(batch::Request::Status),
        usize::MAX,
    )
    .unwrap();
    let payload = protocol::read_frame(&mut stream, usize::MAX)
        .unwrap()
        .unwrap();
    match protocol::decode::<Response>(&payload).unwrap() {
        Response::Batch(batch::Response::Status(stats)) => assert!(stats.errors >= 2),
        other => panic!("expected Status, got {other:?}"),
    }

    let mut client = Client::connect(addr).unwrap();
    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn oversized_frames_are_rejected_then_the_connection_closes() {
    let config = ServeConfig::default().with_max_frame(256);
    let (addr, handle) = Server::spawn(config).unwrap();
    let mut stream = TcpStream::connect(addr).unwrap();

    // Declare a frame far over the server's limit; the payload itself
    // never needs to be sent.
    stream.write_all(&4096u32.to_be_bytes()).unwrap();
    let payload = protocol::read_frame(&mut stream, usize::MAX)
        .unwrap()
        .unwrap();
    match protocol::decode::<Response>(&payload).unwrap() {
        Response::Error(e) => assert_eq!(e.code, ErrorCode::FrameTooLarge),
        other => panic!("expected FrameTooLarge, got {other:?}"),
    }
    // Past an oversized declaration the stream is unsynchronized, so the
    // server closes: the next read sees EOF.
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "connection must close after FrameTooLarge");

    let mut client = Client::connect(addr).unwrap();
    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn idle_connections_time_out_without_affecting_others() {
    let config = ServeConfig::default().with_read_timeout(Duration::from_millis(150));
    let (addr, handle) = Server::spawn(config).unwrap();
    let mut idle = TcpStream::connect(addr).unwrap();
    let mut busy = Client::connect(addr).unwrap();

    // A connection that stays active outlives the idle timeout: each
    // frame resets the idle clock.
    let active = std::thread::spawn(move || {
        for _ in 0..6 {
            std::thread::sleep(Duration::from_millis(50));
            busy.status().unwrap();
        }
        busy
    });
    // Meanwhile the idle connection is closed by the server.
    let mut rest = Vec::new();
    idle.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "idle connection must be closed cleanly");

    let mut busy = active.join().expect("active connection must survive");
    let reply = busy.localize("parking-lot", "centroid", 1).unwrap();
    assert!(reply.localized > 0);

    busy.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn protocol_version_mismatch_is_a_typed_error() {
    let (addr, handle) = Server::spawn(ServeConfig::default()).unwrap();
    let mut stream = TcpStream::connect(addr).unwrap();
    protocol::send(
        &mut stream,
        &Request::Hello {
            protocol: PROTOCOL_VERSION + 1,
        },
        usize::MAX,
    )
    .unwrap();
    let payload = protocol::read_frame(&mut stream, usize::MAX)
        .unwrap()
        .unwrap();
    match protocol::decode::<Response>(&payload).unwrap() {
        Response::Error(e) => assert_eq!(e.code, ErrorCode::UnsupportedProtocol),
        other => panic!("expected UnsupportedProtocol, got {other:?}"),
    }

    // The connection survives the rejection, and v1 is still
    // negotiated: the server echoes the older version back.
    protocol::send(&mut stream, &Request::Hello { protocol: 1 }, usize::MAX).unwrap();
    let payload = protocol::read_frame(&mut stream, usize::MAX)
        .unwrap()
        .unwrap();
    match protocol::decode::<Response>(&payload).unwrap() {
        Response::Hello { protocol, .. } => assert_eq!(protocol, 1),
        other => panic!("expected a v1 Hello, got {other:?}"),
    }

    let mut client = Client::connect(addr).unwrap();
    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn shutdown_is_acknowledged_and_later_connects_fail() {
    let (addr, handle) = Server::spawn(ServeConfig::default()).unwrap();
    let mut client = Client::connect(addr).unwrap();
    client.localize("parking-lot", "centroid", 1).unwrap();
    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();

    // The listener is gone: a fresh connect must fail (or be refused at
    // the first request on platforms that accept briefly).
    match Client::connect(addr) {
        Err(_) => {}
        Ok(mut c) => {
            assert!(c.localize("parking-lot", "centroid", 1).is_err());
        }
    }
}

#[test]
fn full_queues_reject_with_a_typed_overloaded_error() {
    // One worker, a queue bound of one, and a solve floor: a blocker
    // occupies the worker, a second distinct request fills the queue, and
    // a third must be rejected with `Overloaded` instead of waiting —
    // without taking the server down.
    let config = ServeConfig::default()
        .with_workers(1)
        .with_queue_depth(1)
        .with_solve_floor(Duration::from_millis(300));
    let (addr, handle) = Server::spawn(config).unwrap();

    let blocker = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client.localize("parking-lot", "centroid", 11).unwrap();
    });
    let mut control = Client::connect(addr).unwrap();
    while control.status().unwrap().solves_started < 1 {
        std::thread::sleep(Duration::from_millis(5));
    }

    // Fills the one queue slot (distinct triple: no coalescing).
    let queued = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client.localize("town", "centroid", 12).unwrap();
    });
    while control.status().unwrap().queued < 1 {
        std::thread::sleep(Duration::from_millis(5));
    }
    let stats = control.status().unwrap();
    assert_eq!(
        stats.queue_depth, 1,
        "stats must report the configured bound"
    );
    assert_eq!(stats.queued, 1);

    // A third distinct request now finds the queue full.
    let mut rejected = Client::connect(addr).unwrap();
    match rejected.localize("grass-grid", "lss", 13) {
        Err(ClientError::Server(e)) => {
            assert_eq!(e.code, ErrorCode::Overloaded, "got {e}");
            assert!(e.message.contains("retry"), "got {:?}", e.message);
        }
        other => panic!("expected an Overloaded rejection, got {other:?}"),
    }

    blocker.join().unwrap();
    queued.join().unwrap();

    // The rejection is not sticky: once the queue drains, the *same
    // connection* can submit the same triple and get the real answer.
    let reply = rejected.localize("grass-grid", "lss", 13).unwrap();
    let direct = solve_direct("grass-grid", "lss", 13).unwrap();
    assert_reply_bitwise(&reply, &direct);

    let stats = control.status().unwrap();
    assert!(stats.overloaded >= 1, "rejections must be counted");
    assert_eq!(stats.queued, 0, "queue gauge must drain to zero");
    control.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}
