//! Loopback-TCP integration tests for protocol v2's streaming sessions:
//! lifecycle, determinism against directly-driven trackers, TTL
//! eviction under an injected clock, quota rejections, partial reads,
//! and v1 compatibility — all against a real server on an ephemeral
//! port.

use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use resilient_localization::deploy::mobility;
use resilient_localization::localization::tracking::{
    solution_fingerprint, StreamingTracker, TickObservation, Tracker, TrackerConfig,
};
use resilient_localization::serve::client::{Client, ClientError};
use resilient_localization::serve::protocol::stream::{StreamSource, TrackerSpec};
use resilient_localization::serve::protocol::{self, batch, stream, ErrorCode, Request, Response};
use resilient_localization::serve::server::solve_direct;
use resilient_localization::serve::{ManualClock, ServeConfig, Server};

const SEED: u64 = 20050614;

/// A deterministic observation stream over the town mobility preset —
/// the same recipe both sides of the parity tests consume.
fn town_stream(ticks: usize) -> Vec<TickObservation> {
    mobility::preset("town-mobile")
        .expect("registry preset")
        .with_ticks(ticks)
        .trace(SEED)
        .observations
}

fn town_source() -> StreamSource {
    StreamSource::Preset {
        name: "town-mobile".into(),
    }
}

/// The serialized payload bytes `response` would travel as — what
/// `request_raw` returns, for byte-identity assertions.
fn payload_bytes(response: &Response) -> Vec<u8> {
    serde_json::to_string(response)
        .expect("responses serialize infallibly")
        .into_bytes()
}

#[test]
fn wire_sessions_match_direct_trackers_for_any_worker_count() {
    let observations = town_stream(6);
    // The in-process reference: one tracker fed the same stream.
    let mut direct = StreamingTracker::with_lss(TrackerConfig::new(SEED));
    let mut direct_prints = Vec::new();
    for obs in &observations {
        direct.observe(obs).expect("direct tick");
        direct_prints.push(solution_fingerprint(direct.latest().unwrap()));
    }

    for workers in [1usize, 4] {
        let config = ServeConfig::default().with_workers(workers);
        let (addr, handle) = Server::spawn(config).unwrap();
        let mut client = Client::connect(addr).unwrap();
        let mut session = client
            .open_stream(town_source(), TrackerSpec::default(), SEED)
            .unwrap();

        // Push in two chunks; every per-push fingerprint must match the
        // directly-driven tracker at the same point in the stream.
        let (head, tail) = observations.split_at(2);
        let first = session.push(head).unwrap();
        assert_eq!(first.accepted, 2);
        assert_eq!(first.ticks, 2);
        assert_eq!(
            first.fingerprint, direct_prints[1],
            "workers={workers}: fingerprint diverged after the first push"
        );
        let second = session.push(tail).unwrap();
        assert_eq!(second.ticks, observations.len() as u64);
        assert_eq!(
            second.fingerprint,
            *direct_prints.last().unwrap(),
            "workers={workers}: fingerprint diverged after the second push"
        );
        assert_eq!(second.cold_solves, direct.cold_solves());
        assert_eq!(second.warm_updates, direct.warm_updates());

        // The read-back solution is the direct tracker's, bit for bit.
        let read = session.read().unwrap();
        assert_eq!(read.fingerprint, *direct_prints.last().unwrap());
        let map = direct.latest().unwrap().positions();
        assert_eq!(read.positions.len(), map.len());
        for (i, served) in read.positions.iter().enumerate() {
            let expected = map
                .get(resilient_localization::localization::types::NodeId(i))
                .map(|p| (p.x, p.y));
            match (served, expected) {
                (Some(a), Some(b)) => {
                    assert_eq!(a.0.to_bits(), b.0.to_bits());
                    assert_eq!(a.1.to_bits(), b.1.to_bits());
                }
                (None, None) => {}
                other => panic!("workers={workers}: node {i} diverged: {other:?}"),
            }
        }

        assert_eq!(session.close().unwrap(), observations.len() as u64);
        client.shutdown().unwrap();
        handle.join().unwrap().unwrap();
    }
}

#[test]
fn session_lifecycle_and_partial_reads_over_the_wire() {
    let (addr, handle) = Server::spawn(ServeConfig::default()).unwrap();
    let mut client = Client::connect(addr).unwrap();
    let observations = town_stream(3);

    let mut session = client
        .open_stream(town_source(), TrackerSpec::default(), SEED)
        .unwrap();
    let universe = session.universe();
    assert!(universe > 0);
    let token = session.token();

    // Reading before any tick is a typed error, not a panic or a hang.
    match session.read() {
        Err(ClientError::Server(e)) => assert_eq!(e.code, ErrorCode::SolveFailed),
        other => panic!("expected a typed no-solution error, got {other:?}"),
    }

    session.push(&observations).unwrap();
    let full = session.read().unwrap();
    assert_eq!(full.positions.len(), universe as usize);
    assert_eq!(full.nodes, None);

    // A projected read slices the full frame exactly — and the raw
    // reply frame is byte-identical to serializing that slice.
    let nodes = vec![3u64, 0, 3];
    let projected = session.read_nodes(&nodes).unwrap();
    assert_eq!(projected.nodes.as_deref(), Some(&nodes[..]));
    assert_eq!(projected.fingerprint, full.fingerprint);
    for (slot, &id) in projected.positions.iter().zip(&nodes) {
        assert_eq!(*slot, full.positions[id as usize]);
    }
    session.leak();
    let expected = Response::Stream(stream::Response::Solution(stream::SolutionReply {
        nodes: Some(nodes.clone()),
        positions: nodes
            .iter()
            .map(|&id| full.positions[id as usize])
            .collect(),
        localized: nodes
            .iter()
            .filter(|&&id| full.positions[id as usize].is_some())
            .count() as u64,
        ..full.clone()
    }));
    let raw = client
        .request_raw(&Request::Stream(stream::Request::ReadSolution {
            session: token,
            nodes: Some(nodes.clone()),
        }))
        .unwrap();
    assert_eq!(
        raw,
        payload_bytes(&expected),
        "projected read frame must be byte-identical to slicing the full frame"
    );

    // Out-of-universe projection ids are typed errors.
    let mut session =
        resilient_localization::serve::StreamSession::adopt(&mut client, token, universe);
    match session.read_nodes(&[universe]) {
        Err(ClientError::Server(e)) => assert_eq!(e.code, ErrorCode::UnknownNode),
        other => panic!("expected UnknownNode, got {other:?}"),
    }

    // Close tears the session down; its token stops resolving.
    assert_eq!(session.close().unwrap(), observations.len() as u64);
    let mut gone =
        resilient_localization::serve::StreamSession::adopt(&mut client, token, universe);
    match gone.read() {
        Err(ClientError::Server(e)) => assert_eq!(e.code, ErrorCode::UnknownSession),
        other => panic!("expected UnknownSession, got {other:?}"),
    }
    gone.leak();

    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn idle_sessions_evict_deterministically_under_an_injected_clock() {
    let clock = Arc::new(ManualClock::new());
    let config = ServeConfig::default()
        .with_session_ttl(Duration::from_secs(60))
        .with_clock(clock.clone());
    let (addr, handle) = Server::spawn(config).unwrap();
    let mut client = Client::connect(addr).unwrap();

    let session = client
        .open_stream(town_source(), TrackerSpec::default(), SEED)
        .unwrap();
    let token = session.leak();
    assert_eq!(client.status().unwrap().sessions_open, 1);

    // One second short of the TTL the session survives a sweep...
    clock.advance(Duration::from_secs(59));
    let mut survivor = resilient_localization::serve::StreamSession::adopt(&mut client, token, 0);
    survivor.push(&town_stream(1)).unwrap();
    survivor.leak();

    // ...and the push re-armed the timer: another 59 s is still fine,
    // but 60 s of idleness evicts.
    clock.advance(Duration::from_secs(60));
    let mut evicted = resilient_localization::serve::StreamSession::adopt(&mut client, token, 0);
    match evicted.read() {
        Err(ClientError::Server(e)) => assert_eq!(e.code, ErrorCode::SessionEvicted),
        other => panic!("expected SessionEvicted, got {other:?}"),
    }
    evicted.leak();

    let stats = client.status().unwrap();
    assert_eq!(stats.sessions_open, 0);
    assert_eq!(stats.sessions_evicted, 1);

    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn session_quotas_reject_with_typed_overloaded_errors() {
    let config = ServeConfig::default()
        .with_session_capacity(1)
        .with_session_mailbox(1);
    let (addr, handle) = Server::spawn(config).unwrap();
    let mut client = Client::connect(addr).unwrap();

    let session = client
        .open_stream(town_source(), TrackerSpec::default(), SEED)
        .unwrap();
    let token = session.leak();

    // The capacity quota: a second open is rejected, typed.
    match client.open_stream(town_source(), TrackerSpec::default(), SEED + 1) {
        Err(ClientError::Server(e)) => assert_eq!(e.code, ErrorCode::Overloaded),
        other => panic!("expected Overloaded on the second open, got {other:?}"),
    }

    // The mailbox quota: pushing two observations through a one-slot
    // mailbox is rejected before any work is enqueued.
    let mut session = resilient_localization::serve::StreamSession::adopt(&mut client, token, 0);
    match session.push(&town_stream(2)) {
        Err(ClientError::Server(e)) => assert_eq!(e.code, ErrorCode::Overloaded),
        other => panic!("expected Overloaded on the oversized push, got {other:?}"),
    }

    // Neither rejection is sticky: a one-tick push still lands, and
    // closing frees the capacity for a new session.
    session.push(&town_stream(1)).unwrap();
    session.close().unwrap();
    let reopened = client
        .open_stream(town_source(), TrackerSpec::default(), SEED + 1)
        .unwrap();
    reopened.close().unwrap();

    let stats = client.status().unwrap();
    assert!(stats.overloaded >= 2, "quota rejections must be counted");
    assert_eq!(stats.session_capacity, 1);
    assert_eq!(stats.ticks_served, 1);

    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn v1_connections_stay_byte_compatible_and_batch_only() {
    let (addr, handle) = Server::spawn(ServeConfig::default()).unwrap();
    let mut stream = TcpStream::connect(addr).unwrap();

    // Negotiate v1 explicitly.
    protocol::send(&mut stream, &Request::Hello { protocol: 1 }, usize::MAX).unwrap();
    let payload = protocol::read_frame(&mut stream, usize::MAX)
        .unwrap()
        .unwrap();
    match protocol::decode::<Response>(&payload).unwrap() {
        Response::Hello { protocol, .. } => assert_eq!(protocol, 1),
        other => panic!("expected a v1 Hello, got {other:?}"),
    }

    // A raw v1 Localize frame — exactly the bytes a v1 client ships —
    // is answered with exactly the bytes a v1 server shipped:
    // `{"Localized":[{...}]}` serialized from the direct solve.
    protocol::write_frame(
        &mut stream,
        br#"{"Localize":{"deployment":"parking-lot","solver":"centroid","seed":7}}"#,
        usize::MAX,
    )
    .unwrap();
    let payload = protocol::read_frame(&mut stream, usize::MAX)
        .unwrap()
        .unwrap();
    let direct = solve_direct("parking-lot", "centroid", 7).unwrap();
    assert_eq!(
        payload,
        payload_bytes(&Response::Batch(batch::Response::Localized(direct))),
        "v1 Localize reply frames must stay byte-identical"
    );

    // v2-only vocabulary is rejected on a v1 connection, typed.
    protocol::send(
        &mut stream,
        &Request::Stream(stream::Request::ReadSolution {
            session: 1,
            nodes: None,
        }),
        usize::MAX,
    )
    .unwrap();
    let payload = protocol::read_frame(&mut stream, usize::MAX)
        .unwrap()
        .unwrap();
    match protocol::decode::<Response>(&payload).unwrap() {
        Response::Error(e) => assert_eq!(e.code, ErrorCode::UnsupportedProtocol),
        other => panic!("expected UnsupportedProtocol for a v1 stream request, got {other:?}"),
    }
    protocol::send(
        &mut stream,
        &Request::Batch(batch::Request::Localize {
            deployment: "parking-lot".into(),
            solver: "centroid".into(),
            seed: 7,
            nodes: Some(vec![0]),
        }),
        usize::MAX,
    )
    .unwrap();
    let payload = protocol::read_frame(&mut stream, usize::MAX)
        .unwrap()
        .unwrap();
    match protocol::decode::<Response>(&payload).unwrap() {
        Response::Error(e) => assert_eq!(e.code, ErrorCode::UnsupportedProtocol),
        other => panic!("expected UnsupportedProtocol for a v1 projection, got {other:?}"),
    }

    let mut client = Client::connect(addr).unwrap();
    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn batch_projections_serve_from_the_same_cache_byte_identically() {
    let (addr, handle) = Server::spawn(ServeConfig::default()).unwrap();
    let mut client = Client::connect(addr).unwrap();

    // Warm the cache with the full frame, then project against it.
    let full = client.localize("parking-lot", "centroid", SEED).unwrap();
    let before = client.status().unwrap();
    let nodes = vec![2u64, 2, 0, 14];
    let projection = client
        .localize_nodes("parking-lot", "centroid", SEED, &nodes)
        .unwrap();
    let after = client.status().unwrap();
    assert_eq!(
        after.cache_hits,
        before.cache_hits + 1,
        "the projection must be served from the full-frame cache entry"
    );
    assert_eq!(after.solves, before.solves, "no new solve for a projection");
    assert_eq!(
        projection,
        batch::Projection::slice(&full, &nodes).unwrap(),
        "a served projection is exactly the slice of the full reply"
    );

    // Raw-frame byte identity against serializing the slice.
    let raw = client
        .request_raw(&Request::Batch(batch::Request::Localize {
            deployment: "parking-lot".into(),
            solver: "centroid".into(),
            seed: SEED,
            nodes: Some(nodes.clone()),
        }))
        .unwrap();
    assert_eq!(
        raw,
        payload_bytes(&Response::Batch(batch::Response::Projected(
            batch::Projection::slice(&full, &nodes).unwrap()
        )))
    );

    // Out-of-universe ids are typed errors and don't poison the cache.
    match client.localize_nodes("parking-lot", "centroid", SEED, &[999]) {
        Err(ClientError::Server(e)) => assert_eq!(e.code, ErrorCode::UnknownNode),
        other => panic!("expected UnknownNode, got {other:?}"),
    }
    let again = client.localize("parking-lot", "centroid", SEED).unwrap();
    assert_eq!(again, full);

    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}
