//! Dense ↔ sparse backend parity, end to end.
//!
//! The sparse backend (`rl_math::sparse` + the solver paths built on it)
//! exists to make metro-scale problems tractable, **not** to change any
//! answer. These tests pin that contract at the integration level:
//!
//! * the CSR Dijkstra completion reproduces the dense
//!   `Topology::shortest_paths` completion on real measurement graphs,
//! * sparse-path MDS-MAP embeds a town-scale scenario into the same
//!   geometry as the dense Jacobi path (compared via pairwise distances,
//!   which are invariant to the eigenvector sign/rotation ambiguity),
//! * sparse-path LSS reproduces the dense path **bit for bit** on a
//!   fixed-seed town-scale solve — the spatial-grid constraint evaluates
//!   the identical objective, so the whole descent trajectory matches,
//! * the LSS objective backends agree on value and gradient for
//!   arbitrary random configurations (property test).

use proptest::prelude::*;
use resilient_localization::prelude::*;
use rl_core::lss::{LssConfig, LssObjective, LssSolver, SoftConstraint};
use rl_core::mds::mdsmap_coordinates_with;
use rl_core::SolverBackend;
use rl_math::gradient::Objective;
use rl_math::sparse::{dijkstra, CsrMatrix};
use rl_net::NodeId as NetNodeId;

/// The town-scale measurement graph every end-to-end test runs on: the
/// paper's 59-node town under its synthetic 22 m / N(0, 0.33 m) model.
fn town_measurements() -> (Vec<Point2>, MeasurementSet) {
    let scenario = rl_deploy::Scenario::town(7);
    let problem = scenario.instantiate(7);
    (
        problem.truth().expect("scenario carries truth").to_vec(),
        problem.measurements().clone(),
    )
}

#[test]
fn csr_dijkstra_matches_dense_shortest_paths_on_town_graph() {
    let (_, set) = town_measurements();
    let n = set.node_count();
    let edges: Vec<(usize, usize, f64)> = set
        .iter()
        .map(|(a, b, d)| (a.index(), b.index(), d))
        .collect();
    let adjacency = CsrMatrix::symmetric_from_edges(n, &edges).unwrap();

    let topology = set.topology();
    let dense = topology.shortest_paths(|a, b| set.get(a, b).expect("edge exists"));

    for (src, dense_row) in dense.iter().enumerate() {
        let sparse = dijkstra(&adjacency, src);
        for (j, entry) in dense_row.iter().enumerate() {
            match entry {
                Some(d) => assert!(
                    (sparse[j] - d).abs() < 1e-9 * (1.0 + d),
                    "distance {src}->{j}: sparse {} vs dense {d}",
                    sparse[j]
                ),
                None => assert!(sparse[j].is_infinite()),
            }
        }
    }
}

#[test]
fn sparse_mdsmap_embeds_the_town_like_the_dense_path() {
    let (truth, set) = town_measurements();
    let dense = mdsmap_coordinates_with(&set, SolverBackend::Dense).unwrap();
    let sparse = mdsmap_coordinates_with(&set, SolverBackend::Sparse).unwrap();
    assert_eq!(dense.len(), sparse.len());

    // Pairwise distances are invariant to the eigenvector sign /
    // degenerate-rotation ambiguity between the two eigensolvers.
    let scale: f64 = dense
        .iter()
        .flat_map(|a| dense.iter().map(move |b| a.distance(*b)))
        .fold(1.0, f64::max);
    for i in 0..dense.len() {
        for j in (i + 1)..dense.len() {
            let dd = dense[i].distance(dense[j]);
            let ds = sparse[i].distance(sparse[j]);
            assert!(
                (dd - ds).abs() < 1e-5 * scale,
                "pair {i}-{j}: dense {dd} vs sparse {ds}"
            );
        }
    }

    // Both embeddings evaluate identically against ground truth.
    let dense_eval = evaluate_against_truth(&PositionMap::complete(dense), &truth).unwrap();
    let sparse_eval = evaluate_against_truth(&PositionMap::complete(sparse), &truth).unwrap();
    assert!(
        (dense_eval.mean_error - sparse_eval.mean_error).abs() < 1e-4,
        "dense {} vs sparse {}",
        dense_eval.mean_error,
        sparse_eval.mean_error
    );
}

#[test]
fn sparse_lss_reproduces_the_dense_solve_bit_for_bit() {
    let (_, set) = town_measurements();
    // A short fixed-seed solve is enough: bitwise equality of the whole
    // trajectory either holds from the first accepted step or not at all.
    let config = |backend| {
        LssConfig::default()
            .with_min_spacing(9.14, 10.0)
            .with_backend(backend)
            .with_descent(rl_math::DescentConfig {
                max_iterations: 600,
                restarts: 4,
                ..LssConfig::default().descent
            })
    };
    let solve = |backend| {
        let mut rng = rl_math::rng::seeded(99);
        LssSolver::new(config(backend))
            .solve(&set, &mut rng)
            .expect("town graph is solvable")
    };
    let dense = solve(SolverBackend::Dense);
    let sparse = solve(SolverBackend::Sparse);

    assert_eq!(dense.stress().to_bits(), sparse.stress().to_bits());
    assert_eq!(dense.iterations(), sparse.iterations());
    assert_eq!(dense.converged(), sparse.converged());
    for (a, b) in dense.coordinates().iter().zip(sparse.coordinates()) {
        assert_eq!(a.x.to_bits(), b.x.to_bits(), "x coordinates diverged");
        assert_eq!(a.y.to_bits(), b.y.to_bits(), "y coordinates diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The two constraint backends evaluate the identical objective for
    /// arbitrary sparse graphs and arbitrary (even far-from-plausible)
    /// configurations: same value bits, same gradient bits, same active
    /// constraint count.
    #[test]
    fn lss_objective_backends_agree_bitwise(
        pts in proptest::collection::vec((-40.0f64..40.0, -40.0f64..40.0), 4..10),
        edges in proptest::collection::vec((0usize..10, 0usize..10), 2..18),
        x0 in proptest::collection::vec(-50.0f64..50.0, 20),
        d_min in 3.0f64..12.0,
    ) {
        let n = pts.len();
        let mut set = MeasurementSet::new(n);
        for &(a, b) in &edges {
            if a == b || a >= n || b >= n {
                continue;
            }
            let pa = Point2::new(pts[a].0, pts[a].1);
            let pb = Point2::new(pts[b].0, pts[b].1);
            let d = pa.distance(pb);
            if d > 1e-6 {
                set.insert(NetNodeId(a), NetNodeId(b), d);
            }
        }
        let soft = Some(SoftConstraint {
            min_spacing_m: d_min,
            weight: 10.0,
        });
        let dense = LssObjective::with_backend(&set, soft, SolverBackend::Dense);
        let sparse = LssObjective::with_backend(&set, soft, SolverBackend::Sparse);
        let x: Vec<f64> = x0.iter().take(2 * n).copied().collect();
        prop_assume!(x.len() == 2 * n);

        prop_assert_eq!(dense.value(&x).to_bits(), sparse.value(&x).to_bits());
        let mut gd = vec![0.0; 2 * n];
        let mut gs = vec![0.0; 2 * n];
        dense.gradient(&x, &mut gd);
        sparse.gradient(&x, &mut gs);
        for (a, b) in gd.iter().zip(&gs) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        prop_assert_eq!(dense.active_constraints(&x), sparse.active_constraints(&x));
    }
}
