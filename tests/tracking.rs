//! Integration tests for the online tracking layer: warm-start parity
//! with the batch solvers, bit-identical replay across worker counts,
//! cold-restart equivalence after `reset()`, and property-based churn
//! coverage.

use proptest::prelude::*;
use resilient_localization::prelude::*;
use rl_core::distributed::{DistributedConfig, DistributedSolver};
use rl_core::tracking::COLD_STREAM;
use rl_deploy::mobility::observation_fingerprint;

const SEED: u64 = 20050614;

/// A churn threshold no observation can satisfy: forces the cold path
/// on every tick (the reference arm).
const ALWAYS_COLD: f64 = f64::NEG_INFINITY;

/// A static, churn-free mobility stream over the paper's town.
fn static_town(ticks: usize) -> MobilityTrace {
    MobilityScenario::town(SEED)
        .with_motion(MotionModel::Static)
        .with_churn(ChurnModel::none())
        .with_ticks(ticks)
        .trace(SEED)
}

/// The tracker's standard cold engine, standalone: anchored sparse LSS.
fn batch_lss() -> LssSolver {
    LssSolver::new(LssConfig {
        use_anchors: true,
        ..LssConfig::metro()
    })
}

#[test]
fn cold_bootstrap_is_bitwise_the_batch_solver() {
    // Tick 0 goes through the cold path; with every node active, the
    // tracker's subproblem is the full problem, so its positions must
    // match a direct batch solve bit for bit — same solver, same
    // cold-derived seed.
    let trace = static_town(1);
    let obs = &trace.observations[0];
    let mut tracker = StreamingTracker::with_lss(TrackerConfig::new(SEED));
    let tracked = tracker.observe(obs).unwrap().positions().clone();

    let problem = Problem::builder(obs.measurements.clone())
        .anchors(obs.anchors.clone())
        .truth(obs.truth.clone().unwrap())
        .build()
        .unwrap();
    let mut rng = rl_math::rng::seeded(cold_seed(SEED, 0));
    let reference = batch_lss().localize(&problem, &mut rng).unwrap();

    assert_eq!(tracked.len(), reference.positions().len());
    for i in 0..tracked.len() {
        match (tracked.get(NodeId(i)), reference.positions().get(NodeId(i))) {
            (Some(a), Some(b)) => {
                assert_eq!(a.x.to_bits(), b.x.to_bits(), "node {i} x diverged");
                assert_eq!(a.y.to_bits(), b.y.to_bits(), "node {i} y diverged");
            }
            (None, None) => {}
            _ => panic!("localization sets diverged at node {i}"),
        }
    }
}

#[test]
fn warm_updates_reach_a_bitwise_fixed_point_on_a_static_network() {
    // Feeding the *same* observation repeatedly must converge: once the
    // bounded Gauss-Newton steps stop improving, the positions freeze
    // bit for bit (the warm path draws no randomness), in agreement
    // with the batch solution to well under the measurement noise.
    let trace = static_town(1);
    let obs = &trace.observations[0];
    let mut tracker = StreamingTracker::with_lss(TrackerConfig::new(SEED));
    let mut last = None;
    let mut fixed = false;
    for _ in 0..40 {
        let fp = solution_fingerprint(tracker.observe(obs).unwrap());
        if last == Some(fp) {
            fixed = true;
            break;
        }
        last = Some(fp);
    }
    assert!(fixed, "warm updates never reached a fixed point");

    // The fixed point agrees with the batch solver's answer to ~cm on
    // the town (both are estimates of the same 0.33 m-noise geometry).
    let problem = Problem::builder(obs.measurements.clone())
        .anchors(obs.anchors.clone())
        .truth(obs.truth.clone().unwrap())
        .build()
        .unwrap();
    let mut rng = rl_math::rng::seeded(cold_seed(SEED, 0));
    let reference = batch_lss().localize(&problem, &mut rng).unwrap();
    let truth = obs.truth.as_ref().unwrap();
    let tracked_err = evaluate_absolute(tracker.latest().unwrap().positions(), truth)
        .unwrap()
        .mean_error;
    let batch_err = evaluate_absolute(reference.positions(), truth)
        .unwrap()
        .mean_error;
    assert!(
        (tracked_err - batch_err).abs() < 0.05,
        "tracker limit {tracked_err:.4} m vs batch {batch_err:.4} m"
    );
}

#[test]
fn replay_is_bit_identical_across_worker_counts() {
    // The distributed cold engine shards its local-solve phase across a
    // worker pool; the tracker's stream must not care. Two ticks: a
    // cold bootstrap (workers exercised) and a warm update on top.
    let trace = MobilityScenario::new(rl_deploy::Scenario::parking_lot(SEED))
        .with_motion(MotionModel::RandomWalk { step_m: 0.3 })
        .with_churn(ChurnModel::none())
        .with_ticks(2)
        .trace(SEED);
    let stream = |workers: usize| -> Vec<u64> {
        let cold = DistributedSolver::new(DistributedConfig::default().with_workers(workers));
        let mut tracker = StreamingTracker::new(TrackerConfig::new(SEED), Box::new(cold));
        trace
            .iter()
            .map(|obs| solution_fingerprint(tracker.observe(obs).unwrap()))
            .collect()
    };
    let serial = stream(1);
    let pooled = stream(4);
    assert_eq!(
        serial, pooled,
        "tracker stream diverged between 1 and 4 workers"
    );
}

#[test]
fn reset_gives_cold_restart_equivalence() {
    // A reset tracker must replay a stream bit-identically to a fresh
    // one: no carried positions, counters, or tick index survive.
    let trace = MobilityScenario::town(SEED).with_ticks(4).trace(SEED);
    let mut tracker = StreamingTracker::with_lss(TrackerConfig::new(SEED));
    let first: Vec<u64> = trace
        .iter()
        .map(|obs| solution_fingerprint(tracker.observe(obs).unwrap()))
        .collect();
    assert!(tracker.warm_updates() > 0, "stream should warm up");
    tracker.reset();
    assert_eq!(tracker.ticks(), 0);
    assert!(tracker.latest().is_none());
    let replayed: Vec<u64> = trace
        .iter()
        .map(|obs| solution_fingerprint(tracker.observe(obs).unwrap()))
        .collect();
    assert_eq!(first, replayed, "reset tracker diverged from fresh replay");

    let mut fresh = StreamingTracker::with_lss(TrackerConfig::new(SEED));
    let from_fresh: Vec<u64> = trace
        .iter()
        .map(|obs| solution_fingerprint(fresh.observe(obs).unwrap()))
        .collect();
    assert_eq!(first, from_fresh);
}

#[test]
fn cold_seed_is_pure_and_salted() {
    // The cold-solve seed derivation is the replay contract: a pure
    // function of (config seed, observation index), built on the same
    // odd-salt sub-stream idiom as the rest of the workspace.
    assert_eq!(COLD_STREAM % 2, 1, "stream salt must be odd");
    assert_eq!(cold_seed(SEED, 3), SEED ^ 4u64.wrapping_mul(COLD_STREAM));
    let mut seen = std::collections::HashSet::new();
    for tick in 0..64 {
        assert!(seen.insert(cold_seed(SEED, tick)), "seed collision");
    }
}

#[test]
fn tracker_survives_a_full_disconnection_tick() {
    // An observation whose active set has no measured edges cannot be
    // refined or cold-solved; the tracker must return a typed error and
    // keep serving subsequent good ticks.
    let trace = static_town(3);
    let mut tracker = StreamingTracker::with_lss(TrackerConfig::new(SEED));
    tracker.observe(&trace.observations[0]).unwrap();

    let mut dead = trace.observations[1].clone();
    dead.measurements = MeasurementSet::new(dead.measurements.node_count());
    assert!(tracker.observe(&dead).is_err(), "no edges must not solve");

    let solution = tracker.observe(&trace.observations[2]).unwrap();
    assert!(solution.positions().localized_count() > 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random join/leave/move sequences: the tracker never panics,
    /// never emits a non-finite position, and its per-stream error
    /// stays bounded relative to a cold re-solve of the same ticks.
    #[test]
    fn churn_streams_stay_finite_and_bounded(
        seed in 0u64..1_000,
        step_m in 0.0f64..1.5,
        join in 0.0f64..0.4,
        leave in 0.0f64..0.4,
        initial in 0.6f64..1.0,
        waypoint in proptest::bool::ANY,
    ) {
        let motion = if waypoint {
            MotionModel::Waypoint { speed_m_per_tick: step_m + 0.1 }
        } else {
            MotionModel::RandomWalk { step_m }
        };
        let trace = MobilityScenario::new(rl_deploy::Scenario::parking_lot(SEED))
            .with_motion(motion)
            .with_churn(ChurnModel { join_probability: join, leave_probability: leave })
            .with_initial_active_fraction(initial)
            .with_ticks(4)
            .trace(seed);

        let mut warm = StreamingTracker::with_lss(TrackerConfig::new(seed));
        let mut cold = StreamingTracker::with_lss(
            TrackerConfig::new(seed).with_churn_restart_fraction(ALWAYS_COLD),
        );
        let mut warm_errs = Vec::new();
        let mut cold_errs = Vec::new();
        for obs in trace.iter() {
            let truth = obs.truth.clone().unwrap();
            // Sparse churned subnetworks may legitimately fail to solve
            // (disconnection, too few anchors); an error is fine, a
            // panic or a non-finite estimate is not.
            let warm_err = match warm.observe(obs) {
                Ok(solution) => {
                    for (_, p) in solution.positions().iter() {
                        if let Some(p) = p {
                            prop_assert!(p.x.is_finite() && p.y.is_finite());
                        }
                    }
                    evaluate_absolute(solution.positions(), &truth).ok().map(|e| e.mean_error)
                }
                Err(_) => None,
            };
            let cold_err = match cold.observe(obs) {
                Ok(solution) => {
                    evaluate_absolute(solution.positions(), &truth).ok().map(|e| e.mean_error)
                }
                Err(_) => None,
            };
            if let (Some(w), Some(c)) = (warm_err, cold_err) {
                warm_errs.push(w);
                cold_errs.push(c);
            }
        }
        if !warm_errs.is_empty() {
            let warm_mean = warm_errs.iter().sum::<f64>() / warm_errs.len() as f64;
            let cold_mean = cold_errs.iter().sum::<f64>() / cold_errs.len() as f64;
            prop_assert!(
                warm_mean <= cold_mean * 3.0 + 2.0,
                "warm stream error {warm_mean:.3} m unbounded vs cold {cold_mean:.3} m"
            );
        }
    }

    /// Mobility traces themselves are churn-safe: every tick's edges
    /// touch only active nodes, ground truth stays finite, and the
    /// trace replays bit-identically.
    #[test]
    fn mobility_traces_replay_and_stay_consistent(
        seed in 0u64..1_000,
        join in 0.0f64..0.5,
        leave in 0.0f64..0.5,
    ) {
        let scenario = MobilityScenario::new(rl_deploy::Scenario::parking_lot(SEED))
            .with_churn(ChurnModel { join_probability: join, leave_probability: leave })
            .with_ticks(5);
        let trace = scenario.trace(seed);
        let replay = scenario.trace(seed);
        for (a, b) in trace.iter().zip(replay.iter()) {
            prop_assert_eq!(observation_fingerprint(a), observation_fingerprint(b));
            for p in a.truth.as_ref().unwrap() {
                prop_assert!(p.x.is_finite() && p.y.is_finite());
            }
            for (u, v, d, w) in a.measurements.iter_weighted() {
                prop_assert!(a.active.contains(&u) && a.active.contains(&v));
                prop_assert!(d.is_finite() && w.is_finite());
            }
        }
    }
}
