//! Golden pins for one mobility trajectory and its tracked solutions.
//!
//! PR 8 added the time-stepped mobility layer (`rl_deploy::mobility`) and
//! the warm-started tracker (`rl_core::tracking`). These pins freeze one
//! town-scale trajectory — per-tick observation fingerprints straight off
//! the vendored xoshiro256++ stream, plus the tracker's per-tick solution
//! fingerprints on that trajectory. Any change to the draw order inside
//! `MobilityScenario::trace` (churn, motion, measurement sub-streams), to
//! the measurement remap, or to the tracker's cold/warm paths shows up
//! here as a bit-level diff before it can silently re-run every archived
//! tracking benchmark on different data.
//!
//! Golden values hash output driven by the vendored xoshiro256++ stream
//! and are not portable to upstream `rand`.

use resilient_localization::prelude::*;
use rl_deploy::mobility::observation_fingerprint;

/// Per-tick observation fingerprints of
/// `MobilityScenario::town(2005).with_ticks(4).trace(2005)` — default
/// motion (random walk, 0.5 m steps) and light churn.
const GOLDEN_TOWN_OBSERVATIONS: [u64; 4] = [
    0xf476_6eb8_262c_7dbe,
    0xbcaa_ef3b_abbd_f6a4,
    0x831a_0a0c_c91e_2f60,
    0xe3f7_7a69_5417_2359,
];

/// Per-tick solution fingerprints of a default warm-started
/// `StreamingTracker` (seed 2005, LSS cold engine) consuming that same
/// trajectory: tick 0 is the cold bootstrap, ticks 1..4 are warm updates.
const GOLDEN_TOWN_SOLUTIONS: [u64; 4] = [
    0x0187_7086_4545_4db5,
    0xd285_8de9_89cc_ff00,
    0x514a_4d26_4f4c_cc84,
    0x7050_2563_2494_5c04,
];

fn golden_trace() -> MobilityTrace {
    MobilityScenario::town(2005).with_ticks(4).trace(2005)
}

#[test]
fn town_trajectory_fingerprints_are_unchanged() {
    let trace = golden_trace();
    assert_eq!(trace.len(), GOLDEN_TOWN_OBSERVATIONS.len());
    for (obs, expected) in trace.iter().zip(GOLDEN_TOWN_OBSERVATIONS) {
        assert_eq!(
            observation_fingerprint(obs),
            expected,
            "trajectory diverged at tick {}: got {:#018x}",
            obs.tick,
            observation_fingerprint(obs)
        );
    }
}

#[test]
fn tracked_solution_fingerprints_are_unchanged() {
    let trace = golden_trace();
    let mut tracker = StreamingTracker::with_lss(TrackerConfig::new(2005));
    for (obs, expected) in trace.iter().zip(GOLDEN_TOWN_SOLUTIONS) {
        let solution = tracker.observe(obs).expect("golden trace solves");
        assert_eq!(
            solution_fingerprint(solution),
            expected,
            "tracked solution diverged at tick {}: got {:#018x}",
            obs.tick,
            solution_fingerprint(solution)
        );
    }
    assert_eq!(tracker.cold_solves(), 1, "tick 0 is the only cold solve");
    assert_eq!(tracker.warm_updates(), 3);
}
