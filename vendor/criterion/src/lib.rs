//! Offline shim for the subset of `criterion` used by the workspace's
//! benches. It keeps the `criterion_group!` / `criterion_main!` /
//! `bench_function` / `Bencher::iter` surface, but instead of full
//! statistical sampling it runs each routine a small, time-bounded number
//! of iterations and prints a single mean-time line. This keeps
//! `cargo bench` useful for coarse comparisons and keeps bench targets
//! cheap enough to execute in CI smoke runs.

#![deny(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, criterion's optimization barrier.
pub use std::hint::black_box;

/// How batched inputs are sized (accepted for API compatibility; the shim
/// treats every batch size the same way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// The benchmark driver handed to registered bench functions.
#[derive(Debug)]
pub struct Criterion {
    /// Wall-clock budget per benchmark.
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            budget: Duration::from_millis(250),
        }
    }
}

impl Criterion {
    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            budget: self.budget,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        if bencher.iters > 0 {
            let mean = bencher.elapsed / bencher.iters as u32;
            println!(
                "bench: {id:<44} {mean:>12.2?}/iter ({} iters)",
                bencher.iters
            );
        } else {
            println!("bench: {id:<44} (no iterations)");
        }
        self
    }

    /// Accepted for API compatibility; adjusts nothing beyond the budget.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, budget: Duration) -> &mut Self {
        self.budget = budget;
        self
    }
}

/// Times a closure over a bounded number of iterations.
#[derive(Debug)]
pub struct Bencher {
    budget: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly until the time budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        loop {
            let t0 = Instant::now();
            black_box(routine());
            self.elapsed += t0.elapsed();
            self.iters += 1;
            if start.elapsed() >= self.budget || self.iters >= 1_000_000 {
                break;
            }
        }
    }

    /// Runs `routine` on fresh inputs from `setup`, timing only `routine`.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let start = Instant::now();
        loop {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.elapsed += t0.elapsed();
            self.iters += 1;
            if start.elapsed() >= self.budget || self.iters >= 1_000_000 {
                break;
            }
        }
    }

    /// Like [`Bencher::iter_batched`], but the routine takes `&mut I`.
    pub fn iter_batched_ref<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        let start = Instant::now();
        loop {
            let mut input = setup();
            let t0 = Instant::now();
            black_box(routine(&mut input));
            self.elapsed += t0.elapsed();
            self.iters += 1;
            if start.elapsed() >= self.budget || self.iters >= 1_000_000 {
                break;
            }
        }
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default();
        c.measurement_time(Duration::from_millis(5));
        let mut calls = 0u64;
        c.bench_function("smoke/iter", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn iter_batched_uses_fresh_inputs() {
        let mut c = Criterion::default();
        c.measurement_time(Duration::from_millis(5));
        c.bench_function("smoke/batched", |b| {
            b.iter_batched(
                || vec![1u64, 2, 3],
                |v| v.into_iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
    }
}
