//! Offline shim for the subset of `proptest` used by the workspace's
//! property suites: the [`proptest!`] macro, range/tuple/vec/bool
//! strategies, `prop_assume!`, and `prop_assert!`.
//!
//! Differences from upstream proptest, by design:
//!
//! * sampling is driven by a fixed-seed deterministic RNG, so every run
//!   explores the same cases (good for CI reproducibility),
//! * there is **no shrinking** — a failing case panics with the assertion
//!   message directly,
//! * strategies are plain samplers (`Strategy::sample`), not value trees.

#![deny(missing_docs)]

use rand::rngs::StdRng;
use rand::Rng;

/// Re-exported so macro expansions can name the RNG type.
pub use rand::SeedableRng;

/// A source of random test inputs.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// A fixed value used as a strategy (proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{Rng, StdRng, Strategy};

    /// Samples `true` and `false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical instance of [`Any`].
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut StdRng) -> bool {
            rng.random_bool(0.5)
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Rng, StdRng, Strategy};

    /// A length specification: fixed or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy producing a `Vec` of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a strategy for vectors of `element`, with `size` elements
    /// (a fixed count or a range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.random_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Test-runner configuration (only `cases` is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Outcome of one sampled case (used by macro expansions).
#[doc(hidden)]
#[derive(Debug)]
pub enum TestCaseOutcome {
    /// The case's assumptions held and its assertions passed.
    Pass,
    /// `prop_assume!` rejected the inputs; the case does not count.
    Reject,
}

/// Everything a test module usually imports.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy};
}

/// Rejects the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return $crate::TestCaseOutcome::Reject;
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return $crate::TestCaseOutcome::Reject;
        }
    };
}

/// Asserts inside a property; failure panics with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

/// Defines deterministic property tests.
///
/// Each `fn name(arg in strategy, ...) { body }` expands to a `#[test]`
/// (the attribute is written inside the macro invocation, as in upstream
/// proptest) that samples inputs until the configured number of cases has
/// run, skipping cases rejected by `prop_assume!`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                // Seed differs per property so suites don't correlate, but
                // is fixed across runs for reproducibility.
                let mut __seed = 0xC0FF_EE00u64;
                for b in stringify!($name).bytes() {
                    __seed = __seed.wrapping_mul(31).wrapping_add(b as u64);
                }
                let mut __rng =
                    <$crate::__StdRng as $crate::SeedableRng>::seed_from_u64(__seed);
                let mut __passed = 0u32;
                let mut __attempts = 0u32;
                let __max_attempts = __cfg.cases.saturating_mul(50).max(200);
                while __passed < __cfg.cases {
                    __attempts += 1;
                    assert!(
                        __attempts <= __max_attempts,
                        "proptest: too many rejected cases in {} ({} attempts, {} passed)",
                        stringify!($name), __attempts, __passed
                    );
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    // The closure gives `prop_assume!` a scope to return
                    // from without ending the whole test.
                    #[allow(clippy::redundant_closure_call)]
                    let __outcome = (|| {
                        $body
                        $crate::TestCaseOutcome::Pass
                    })();
                    if let $crate::TestCaseOutcome::Pass = __outcome {
                        __passed += 1;
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name( $($arg in $strat),+ ) $body
            )*
        }
    };
}

#[doc(hidden)]
pub use rand::rngs::StdRng as __StdRng;

#[cfg(test)]
mod tests {
    use crate as proptest;
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(
            x in -5.0f64..5.0,
            n in 1usize..10,
            flags in proptest::collection::vec(proptest::bool::ANY, 0..4),
        ) {
            prop_assert!((-5.0..5.0).contains(&x), "x = {x}");
            prop_assert!((1..10).contains(&n));
            prop_assert!(flags.len() < 4);
        }

        #[test]
        fn assume_rejects_without_failing(
            n in 0u64..100,
        ) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        use crate::Strategy;
        let s = crate::collection::vec(0.0f64..1.0, 3usize..7);
        let mut a = <crate::__StdRng as crate::SeedableRng>::seed_from_u64(9);
        let mut b = <crate::__StdRng as crate::SeedableRng>::seed_from_u64(9);
        for _ in 0..10 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }
}
