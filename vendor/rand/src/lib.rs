//! Offline, API-compatible shim for the subset of the `rand` crate (0.9-style
//! API) used by the `resilient-localization` workspace.
//!
//! The build environment has no network access to crates.io, so this crate
//! re-implements the pieces the workspace relies on:
//!
//! * [`RngCore`] / [`Rng`] with `random`, `random_range`, `random_bool`,
//! * [`SeedableRng`] with `seed_from_u64` / `from_seed`,
//! * [`rngs::StdRng`], a deterministic xoshiro256++ generator.
//!
//! The stream produced by [`rngs::StdRng`] is *not* the same as upstream
//! rand's `StdRng` (which is ChaCha12); it is deterministic, seeded, and
//! statistically sound for simulation purposes, which is all the workspace's
//! seeding contract requires.

#![deny(missing_docs)]

/// Low-level source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32-bit value (top half of the next word).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (uniform over the type's range; `[0, 1)` for floats).
    fn random<T>(&mut self) -> T
    where
        StandardUniform: Distribution<T>,
    {
        StandardUniform.sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }

    /// rand 0.8 spelling of [`Rng::random`].
    #[deprecated(note = "use random()")]
    fn r#gen<T>(&mut self) -> T
    where
        StandardUniform: Distribution<T>,
    {
        self.random()
    }

    /// rand 0.8 spelling of [`Rng::random_range`].
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// rand 0.8 spelling of [`Rng::random_bool`].
    fn gen_bool(&mut self, p: f64) -> bool {
        self.random_bool(p)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A distribution that can produce values of type `T`.
pub trait Distribution<T> {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard distribution: uniform over the full range for integers and
/// `bool`, uniform over `[0, 1)` for floats.
#[derive(Debug, Clone, Copy, Default)]
pub struct StandardUniform;

/// rand 0.8 name for [`StandardUniform`].
pub type Standard = StandardUniform;

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for StandardUniform {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for StandardUniform {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Distribution<f64> for StandardUniform {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for StandardUniform {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Distribution<bool> for StandardUniform {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// A range that can be sampled from uniformly.
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling (Lemire); the tiny modulo
                // bias of plain `% span` is avoided by widening to 128 bits.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == 0 && end as u64 == u64::MAX as $t as u64 && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end - start) as u64 + 1;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start + hi as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    // Full domain: span would overflow u64 for 64-bit types.
                    return rng.next_u64() as $t;
                }
                let span = (end.wrapping_sub(start) as $u as u64).wrapping_add(1);
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start.wrapping_add(hi as $t)
            }
        }
    )*};
}

impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: $t = StandardUniform.sample(rng);
                let x = self.start + unit * (self.end - self.start);
                // Rounding of start + unit*span can land exactly on `end`
                // when |start| dwarfs the span; keep the range half-open.
                if x < self.end {
                    x
                } else {
                    <$t>::max(self.start, <$t>::next_down(self.end))
                }
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit: $t = StandardUniform.sample(rng);
                start + unit * (end - start)
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

/// A generator constructible from a fixed seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanded via SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng, SplitMix64};

    /// The workspace-standard deterministic generator: xoshiro256++.
    ///
    /// Not the same stream as upstream rand's `StdRng`; see the crate docs.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            if s.iter().all(|&w| w == 0) {
                // xoshiro must not start from the all-zero state.
                let mut sm = SplitMix64(0);
                for w in &mut s {
                    *w = sm.next();
                }
            }
            StdRng { s }
        }
    }

    /// Alias kept for code written against rand's `SmallRng`.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.random()).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn unit_interval_bounds_and_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = rng.random_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let z = rng.random_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&z));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..7)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn float_range_stays_half_open_under_rounding() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100_000 {
            let x = rng.random_range(100.0f64..100.1);
            assert!((100.0..100.1).contains(&x), "x = {x}");
        }
    }

    #[test]
    fn full_domain_inclusive_ranges_do_not_overflow() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..100 {
            let _ = rng.random_range(i64::MIN..=i64::MAX);
            let _ = rng.random_range(u64::MIN..=u64::MAX);
            let _ = rng.random_range(i8::MIN..=i8::MAX);
        }
        // Non-degenerate: full-domain draws vary.
        let a: Vec<i64> = (0..8)
            .map(|_| rng.random_range(i64::MIN..=i64::MAX))
            .collect();
        assert!(a.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn bool_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }
}
