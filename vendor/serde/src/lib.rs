//! Offline, API-compatible shim for the subset of `serde` used by the
//! `resilient-localization` workspace.
//!
//! The build environment has no network access to crates.io, so this crate
//! implements a simplified serialization framework under serde's names:
//! [`Serialize`] and [`Deserialize`] convert through an owned [`Value`] tree
//! rather than through serde's visitor machinery, and the companion
//! `serde_derive` crate generates those impls for plain structs and enums.
//! The `serde_json` shim then renders [`Value`] as real JSON text.
//!
//! Supported surface: `#[derive(Serialize, Deserialize)]` on structs (named,
//! tuple, unit), enums (unit/tuple/struct variants), one level of generics,
//! plus manual impls for the std types the workspace stores.

#![deny(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// A serialized value tree — the data model of this shim.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer too large for `i64`.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with arbitrary keys (structs use string keys).
    Map(Vec<(Value, Value)>),
}

impl Value {
    /// Borrows the entries if this is a map.
    pub fn as_map(&self) -> Option<&[(Value, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// Borrows the elements if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// Borrows the string if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error with the given message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }

    /// Creates a "expected X, found Y" error.
    pub fn expected(what: &str, found: &Value) -> Self {
        let kind = match found {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        };
        Error(format!("expected {what}, found {kind}"))
    }
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "serde: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// A type that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    fn from_value(value: &Value) -> Result<Self, Error>;

    /// The value to use when a struct field of this type is *absent*
    /// from the serialized map, or `None` when absence is an error.
    ///
    /// Mirrors real serde's implicit `Option` default: only
    /// `Option<T>` overrides this (to `Some(None)`), which is what lets
    /// a newer reader accept frames written before an optional field
    /// existed. Every other type keeps absence a hard error.
    fn absent() -> Option<Self> {
        None
    }
}

/// Owned-deserialization alias, mirroring serde's `DeserializeOwned`.
pub trait DeserializeOwned: Deserialize {}
impl<T: Deserialize> DeserializeOwned for T {}

// ------------------------------------------------------------------
// Derive support (hidden; called by serde_derive-generated code).
// ------------------------------------------------------------------

/// Looks up a struct field by name and deserializes it. An absent field
/// falls back to [`Deserialize::absent`] (so `Option` fields added after
/// a frame was written read back as `None`) before erroring.
#[doc(hidden)]
pub fn __get_field<T: Deserialize>(entries: &[(Value, Value)], name: &str) -> Result<T, Error> {
    for (k, v) in entries {
        if let Value::Str(s) = k {
            if s == name {
                return T::from_value(v);
            }
        }
    }
    T::absent().ok_or_else(|| Error::custom(format!("missing field `{name}`")))
}

// ------------------------------------------------------------------
// Primitive impls.
// ------------------------------------------------------------------

macro_rules! impl_serde_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range")),
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range")),
                    other => Err(Error::expected("integer", other)),
                }
            }
        }
    )*};
}

impl_serde_signed!(i8, i16, i32, i64, isize, u8, u16, u32);

macro_rules! impl_serde_unsigned_wide {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                match i64::try_from(*self) {
                    Ok(n) => Value::I64(n),
                    Err(_) => Value::U64(*self as u64),
                }
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range")),
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range")),
                    other => Err(Error::expected("integer", other)),
                }
            }
        }
    )*};
}

impl_serde_unsigned_wide!(u64, usize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::F64(x) => Ok(*x as $t),
                    Value::I64(n) => Ok(*n as $t),
                    Value::U64(n) => Ok(*n as $t),
                    other => Err(Error::expected("number", other)),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other)),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = value
            .as_str()
            .ok_or_else(|| Error::expected("char", value))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::expected("string", value))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Deserialize for &'static str {
    /// Deserializes by interning the string into a process-global table
    /// (leaked once per distinct string), so repeated deserialization of
    /// the same names — e.g. environment profiles — costs one leak total.
    fn from_value(value: &Value) -> Result<Self, Error> {
        use std::collections::BTreeSet;
        use std::sync::Mutex;
        use std::sync::OnceLock;

        static INTERNED: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();

        let s = value
            .as_str()
            .ok_or_else(|| Error::expected("string", value))?;
        let table = INTERNED.get_or_init(|| Mutex::new(BTreeSet::new()));
        let mut guard = table.lock().expect("intern table poisoned");
        if let Some(existing) = guard.get(s) {
            return Ok(existing);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        guard.insert(leaked);
        Ok(leaked)
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(()),
            other => Err(Error::expected("null", other)),
        }
    }
}

// ------------------------------------------------------------------
// Reference / smart-pointer impls.
// ------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

// ------------------------------------------------------------------
// Container impls.
// ------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn absent() -> Option<Self> {
        Some(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_seq()
            .ok_or_else(|| Error::expected("sequence", value))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + core::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(value)?;
        <[T; N]>::try_from(items)
            .map_err(|v| Error::custom(format!("expected {N} elements, found {}", v.len())))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value
                    .as_seq()
                    .ok_or_else(|| Error::expected("tuple sequence", value))?;
                let expected = [$(stringify!($idx)),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected tuple of {expected}, found {} elements",
                        items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

fn map_to_value<'a, K, V, I>(entries: I) -> Value
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    Value::Map(entries.map(|(k, v)| (k.to_value(), v.to_value())).collect())
}

fn map_from_value<K, V>(value: &Value) -> Result<Vec<(K, V)>, Error>
where
    K: Deserialize,
    V: Deserialize,
{
    match value {
        Value::Map(entries) => entries
            .iter()
            .map(|(k, v)| Ok((K::from_value(k)?, V::from_value(v)?)))
            .collect(),
        // Maps with non-string keys render to JSON as arrays of [k, v] pairs.
        Value::Seq(items) => items
            .iter()
            .map(|pair| {
                let kv = pair
                    .as_seq()
                    .ok_or_else(|| Error::expected("[key, value] pair", pair))?;
                if kv.len() != 2 {
                    return Err(Error::custom("expected [key, value] pair"));
                }
                Ok((K::from_value(&kv[0])?, V::from_value(&kv[1])?))
            })
            .collect(),
        other => Err(Error::expected("map", other)),
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + std::hash::Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(map_from_value::<K, V>(value)?.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(map_from_value::<K, V>(value)?.into_iter().collect())
    }
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T, S> Deserialize for HashSet<T, S>
where
    T: Deserialize + Eq + std::hash::Hash,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(Vec::<T>::from_value(value)?.into_iter().collect())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(Vec::<T>::from_value(value)?.into_iter().collect())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_round_trips_through_null() {
        let none: Option<u32> = None;
        assert_eq!(none.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Some(3u32).to_value(), Value::I64(3));
    }

    #[test]
    fn absent_fields_default_only_for_options() {
        let entries = [(Value::Str("present".into()), Value::I64(3))];
        // Absent Option fields read back as None (forward compatibility
        // for newly added optional fields).
        let missing_opt: Option<u32> = __get_field(&entries, "added_later").unwrap();
        assert_eq!(missing_opt, None);
        // Present fields still deserialize, optional or not.
        assert_eq!(__get_field::<u32>(&entries, "present").unwrap(), 3);
        assert_eq!(
            __get_field::<Option<u32>>(&entries, "present").unwrap(),
            Some(3)
        );
        // Absent required fields stay hard errors.
        assert!(__get_field::<u32>(&entries, "added_later").is_err());
    }

    #[test]
    fn map_with_tuple_keys_round_trips_via_pairs() {
        let mut m = BTreeMap::new();
        m.insert((1u32, 2u32), 7.5f64);
        let v = m.to_value();
        let back: BTreeMap<(u32, u32), f64> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }
}
