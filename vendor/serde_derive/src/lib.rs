//! Derive macros for the vendored `serde` shim.
//!
//! The build environment has no crates.io access, so this proc-macro crate
//! parses the derive input by hand (no `syn`/`quote`) and emits impls of the
//! shim's `Serialize`/`Deserialize` traits as source text. Supported shapes:
//!
//! * structs with named fields, tuple structs, unit structs,
//! * enums with unit, tuple, and struct variants,
//! * simple type generics (each parameter gets a `Serialize`/`Deserialize`
//!   bound).
//!
//! Container/field `#[serde(...)]` attributes are accepted but ignored —
//! types needing them (e.g. `into`/`from` reprs) write manual impls.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Body {
    /// Named fields, in declaration order.
    Struct(Vec<String>),
    /// Tuple struct with this many fields.
    Tuple(usize),
    /// Unit struct.
    Unit,
    /// Enum variants: name plus shape.
    Enum(Vec<(String, VariantShape)>),
}

#[derive(Debug)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Input {
    name: String,
    /// Type-parameter identifiers, e.g. `["P"]` for `FloodMsg<P>`.
    generics: Vec<String>,
    body: Body,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let mut out = String::new();

    let (impl_generics, ty_generics) = generics_strings(&parsed.generics, "::serde::Serialize");
    out.push_str(&format!(
        "#[automatically_derived]\nimpl{impl_generics} ::serde::Serialize for {}{ty_generics} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n",
        parsed.name
    ));

    match &parsed.body {
        Body::Struct(fields) => {
            out.push_str("::serde::Value::Map(vec![\n");
            for f in fields {
                out.push_str(&format!(
                    "(::serde::Value::Str(\"{f}\".to_string()), ::serde::Serialize::to_value(&self.{f})),\n"
                ));
            }
            out.push_str("])\n");
        }
        Body::Tuple(n) => {
            out.push_str("::serde::Value::Seq(vec![\n");
            for i in 0..*n {
                out.push_str(&format!("::serde::Serialize::to_value(&self.{i}),\n"));
            }
            out.push_str("])\n");
        }
        Body::Unit => out.push_str("::serde::Value::Null\n"),
        Body::Enum(variants) => {
            out.push_str("match self {\n");
            for (v, shape) in variants {
                match shape {
                    VariantShape::Unit => out.push_str(&format!(
                        "Self::{v} => ::serde::Value::Str(\"{v}\".to_string()),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        out.push_str(&format!(
                            "Self::{v}({}) => ::serde::Value::Map(vec![(\
                             ::serde::Value::Str(\"{v}\".to_string()), \
                             ::serde::Value::Seq(vec![{}]))]),\n",
                            binds.join(", "),
                            binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect::<Vec<_>>()
                                .join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        out.push_str(&format!(
                            "Self::{v} {{ {} }} => ::serde::Value::Map(vec![(\
                             ::serde::Value::Str(\"{v}\".to_string()), \
                             ::serde::Value::Map(vec![{}]))]),\n",
                            fields.join(", "),
                            fields
                                .iter()
                                .map(|f| format!(
                                    "(::serde::Value::Str(\"{f}\".to_string()), \
                                     ::serde::Serialize::to_value({f}))"
                                ))
                                .collect::<Vec<_>>()
                                .join(", ")
                        ));
                    }
                }
            }
            out.push_str("}\n");
        }
    }

    out.push_str("}\n}\n");
    out.parse().expect("serde_derive produced invalid Rust")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let mut out = String::new();

    let (impl_generics, ty_generics) = generics_strings(&parsed.generics, "::serde::Deserialize");
    out.push_str(&format!(
        "#[automatically_derived]\nimpl{impl_generics} ::serde::Deserialize for {}{ty_generics} {{\n\
         fn from_value(__value: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n",
        parsed.name
    ));

    match &parsed.body {
        Body::Struct(fields) => {
            out.push_str(
                "let __map = __value.as_map()\
                 .ok_or_else(|| ::serde::Error::expected(\"struct map\", __value))?;\n",
            );
            out.push_str("Ok(Self {\n");
            for f in fields {
                out.push_str(&format!("{f}: ::serde::__get_field(__map, \"{f}\")?,\n"));
            }
            out.push_str("})\n");
        }
        Body::Tuple(n) => {
            out.push_str(&format!(
                "let __seq = __value.as_seq()\
                 .ok_or_else(|| ::serde::Error::expected(\"tuple sequence\", __value))?;\n\
                 if __seq.len() != {n} {{\n\
                 return Err(::serde::Error::custom(format!(\
                 \"expected {n} fields, found {{}}\", __seq.len())));\n}}\n"
            ));
            out.push_str("Ok(Self(\n");
            for i in 0..*n {
                out.push_str(&format!(
                    "::serde::Deserialize::from_value(&__seq[{i}])?,\n"
                ));
            }
            out.push_str("))\n");
        }
        Body::Unit => out.push_str("let _ = __value;\nOk(Self)\n"),
        Body::Enum(variants) => {
            // Unit variants arrive as Str(name); data variants as a
            // single-entry Map { name => payload }.
            out.push_str("if let Some(__s) = __value.as_str() {\nmatch __s {\n");
            for (v, shape) in variants {
                if matches!(shape, VariantShape::Unit) {
                    out.push_str(&format!("\"{v}\" => return Ok(Self::{v}),\n"));
                }
            }
            out.push_str(
                "other => return Err(::serde::Error::custom(\
                 format!(\"unknown variant `{other}`\"))),\n}\n}\n",
            );
            out.push_str(
                "let __map = __value.as_map()\
                 .ok_or_else(|| ::serde::Error::expected(\"enum map\", __value))?;\n\
                 if __map.len() != 1 {\n\
                 return Err(::serde::Error::custom(\"expected single-entry enum map\"));\n}\n\
                 let (__tag, __payload) = &__map[0];\n\
                 let __tag = __tag.as_str()\
                 .ok_or_else(|| ::serde::Error::expected(\"variant name\", __tag))?;\n\
                 match __tag {\n",
            );
            for (v, shape) in variants {
                match shape {
                    VariantShape::Unit => {}
                    VariantShape::Tuple(n) => {
                        out.push_str(&format!(
                            "\"{v}\" => {{\n\
                             let __seq = __payload.as_seq()\
                             .ok_or_else(|| ::serde::Error::expected(\"variant payload\", __payload))?;\n\
                             if __seq.len() != {n} {{\n\
                             return Err(::serde::Error::custom(\"wrong variant arity\"));\n}}\n\
                             Ok(Self::{v}(\n"
                        ));
                        for i in 0..*n {
                            out.push_str(&format!(
                                "::serde::Deserialize::from_value(&__seq[{i}])?,\n"
                            ));
                        }
                        out.push_str("))\n}\n");
                    }
                    VariantShape::Struct(fields) => {
                        out.push_str(&format!(
                            "\"{v}\" => {{\n\
                             let __fields = __payload.as_map()\
                             .ok_or_else(|| ::serde::Error::expected(\"variant fields\", __payload))?;\n\
                             Ok(Self::{v} {{\n"
                        ));
                        for f in fields {
                            out.push_str(&format!(
                                "{f}: ::serde::__get_field(__fields, \"{f}\")?,\n"
                            ));
                        }
                        out.push_str("})\n}\n");
                    }
                }
            }
            out.push_str(
                "other => Err(::serde::Error::custom(\
                 format!(\"unknown variant `{other}`\"))),\n}\n",
            );
        }
    }

    out.push_str("}\n}\n");
    out.parse().expect("serde_derive produced invalid Rust")
}

fn generics_strings(params: &[String], bound: &str) -> (String, String) {
    if params.is_empty() {
        (String::new(), String::new())
    } else {
        let with_bounds: Vec<String> = params.iter().map(|p| format!("{p}: {bound}")).collect();
        (
            format!("<{}>", with_bounds.join(", ")),
            format!("<{}>", params.join(", ")),
        )
    }
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;

    skip_attributes(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);

    let keyword = expect_ident(&tokens, &mut pos);
    let name = expect_ident(&tokens, &mut pos);
    let generics = parse_generics(&tokens, &mut pos);
    skip_where_clause(&tokens, &mut pos);

    let body = match keyword.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Body::Unit,
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: malformed enum body: {other:?}"),
        },
        other => panic!("serde_derive: expected struct or enum, found `{other}`"),
    };

    Input {
        name,
        generics,
        body,
    }
}

fn skip_attributes(tokens: &[TokenTree], pos: &mut usize) {
    while let Some(TokenTree::Punct(p)) = tokens.get(*pos) {
        if p.as_char() != '#' {
            break;
        }
        *pos += 1; // '#'
        if matches!(tokens.get(*pos), Some(TokenTree::Punct(p)) if p.as_char() == '!') {
            *pos += 1;
        }
        *pos += 1; // bracket group
    }
}

fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(tokens.get(*pos), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        *pos += 1;
        // pub(crate), pub(super), ...
        if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *pos += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(i)) => {
            *pos += 1;
            i.to_string()
        }
        other => panic!("serde_derive: expected identifier, found {other:?}"),
    }
}

/// Parses `<...>` after the type name, returning type-parameter idents
/// (lifetimes and const params are skipped; bounds are dropped).
fn parse_generics(tokens: &[TokenTree], pos: &mut usize) -> Vec<String> {
    let mut params = Vec::new();
    if !matches!(tokens.get(*pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return params;
    }
    *pos += 1;
    let mut depth = 1usize;
    let mut at_param_start = true;
    let mut in_lifetime = false;
    while depth > 0 {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
            Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 1 => {
                at_param_start = true;
                in_lifetime = false;
                *pos += 1;
                continue;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '\'' => in_lifetime = true,
            Some(TokenTree::Ident(i)) if at_param_start => {
                let s = i.to_string();
                if in_lifetime {
                    in_lifetime = false;
                } else if s == "const" {
                    // const generic: next ident is the param name but it is
                    // not a type param; record nothing and stop looking at
                    // this position.
                } else {
                    params.push(s);
                }
                at_param_start = false;
            }
            None => panic!("serde_derive: unterminated generics"),
            _ => {}
        }
        *pos += 1;
    }
    params
}

fn skip_where_clause(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(tokens.get(*pos), Some(TokenTree::Ident(i)) if i.to_string() == "where") {
        // Skip until the body group (brace) or end (tuple struct `;`).
        while let Some(t) = tokens.get(*pos) {
            if matches!(t, TokenTree::Group(g) if g.delimiter() == Delimiter::Brace) {
                break;
            }
            *pos += 1;
        }
    }
}

/// Parses `{ a: T, b: U }`, returning field names.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attributes(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut pos);
        let name = expect_ident(&tokens, &mut pos);
        fields.push(name);
        // Skip `: Type` until a comma at angle-bracket depth 0. Groups are
        // atomic tokens, so only `<`/`>` need tracking.
        let mut angle = 0i32;
        while let Some(t) = tokens.get(pos) {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    pos += 1;
                    break;
                }
                _ => {}
            }
            pos += 1;
        }
    }
    fields
}

/// Counts fields of a tuple struct/variant: commas at angle depth 0, plus one.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle = 0i32;
    let mut prev_comma = false;
    for t in &tokens {
        prev_comma = false;
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                count += 1;
                prev_comma = true;
            }
            _ => {}
        }
    }
    // Trailing comma: `(T,)` has one field, not two.
    if prev_comma {
        count -= 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<(String, VariantShape)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attributes(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut pos);
        let shape = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                VariantShape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantShape::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        variants.push((name, shape));
        // Skip discriminant (`= expr`) and the separating comma.
        while let Some(t) = tokens.get(pos) {
            pos += 1;
            if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
    }
    variants
}
