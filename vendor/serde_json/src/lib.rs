//! Offline shim for the subset of `serde_json` used by the workspace:
//! [`to_string`] and [`from_str`], rendering the vendored serde shim's
//! [`Value`] tree as JSON text.
//!
//! Encoding notes:
//!
//! * Maps whose keys are all strings render as JSON objects; maps with
//!   structured keys render as arrays of `[key, value]` pairs (the shim's
//!   `Deserialize` impls for map types accept both).
//! * Floats are written with Rust's shortest round-trip formatting (`{:?}`),
//!   so every finite `f64` survives a text round trip bit-for-bit. Non-finite
//!   floats are written as `null`, matching upstream serde_json.

#![deny(missing_docs)]

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};

/// Serializes `value` to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Deserializes a `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::from_value(&value)
}

/// Serializes `value` into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Deserializes a `T` from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    T::from_value(&value)
}

// ------------------------------------------------------------------
// Writer.
// ------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // `{:?}` keeps a trailing `.0` / decimal point, so the token
                // re-parses as a float rather than an integer.
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.iter().all(|(k, _)| matches!(k, Value::Str(_))) {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_value(out, k);
                    out.push(':');
                    write_value(out, v);
                }
                out.push('}');
            } else {
                out.push('[');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('[');
                    write_value(out, k);
                    out.push(',');
                    write_value(out, v);
                    out.push(']');
                }
                out.push(']');
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------------
// Parser.
// ------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::custom("unexpected end of JSON"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::custom("invalid literal"))
                }
            }
            b't' => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::custom("invalid literal"))
                }
            }
            b'f' => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::custom("invalid literal"))
                }
            }
            b'"' => self.string().map(Value::Str),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::custom("expected `,` or `]`")),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.expect(b':')?;
                    let value = self.value()?;
                    entries.push((Value::Str(key), value));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::custom("expected `,` or `}`")),
                    }
                }
            }
            _ => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::custom("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_keyword("\\u") {
                                    return Err(Error::custom("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::custom("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u escape"))?,
                            );
                        }
                        _ => return Err(Error::custom("invalid escape")),
                    }
                }
                _ => {
                    // Copy one UTF-8 scalar.
                    let start = self.pos;
                    let width = utf8_width(b);
                    self.pos += width;
                    let slice = self
                        .bytes
                        .get(start..self.pos)
                        .ok_or_else(|| Error::custom("truncated UTF-8"))?;
                    out.push_str(
                        core::str::from_utf8(slice).map_err(|_| Error::custom("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::custom("truncated \\u escape"))?;
        self.pos += 4;
        let s = core::str::from_utf8(slice).map_err(|_| Error::custom("invalid \\u escape"))?;
        u32::from_str_radix(s, 16).map_err(|_| Error::custom("invalid \\u escape"))
    }

    fn number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = core::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if text.is_empty() {
            return Err(Error::custom(format!("unexpected character at {start}")));
        }
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(from_str::<i32>("-7").unwrap(), -7);
        assert_eq!(to_string(&0.1f64).unwrap(), "0.1");
        assert_eq!(from_str::<f64>("0.1").unwrap(), 0.1);
        // `{:?}` float formatting keeps the decimal point.
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
    }

    #[test]
    fn float_text_round_trip_is_exact() {
        for &x in &[
            0.1,
            1.0 / 3.0,
            9.144,
            -0.0,
            1e300,
            5e-324,
            core::f64::consts::PI,
        ] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {json} -> {back}");
        }
    }

    #[test]
    fn strings_escape_and_round_trip() {
        let s = "line\nquote\"back\\slash\ttab\u{1F600}";
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn unicode_escapes_parse() {
        let back: String = from_str(r#""A😀""#).unwrap();
        assert_eq!(back, "A\u{1F600}");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u32, 2.5f64), (3, 4.5)];
        let json = to_string(&v).unwrap();
        let back: Vec<(u32, f64)> = from_str(&json).unwrap();
        assert_eq!(back, v);

        let mut m = std::collections::BTreeMap::new();
        m.insert("a".to_string(), vec![1i64, 2]);
        m.insert("b".to_string(), vec![]);
        let json = to_string(&m).unwrap();
        assert!(
            json.starts_with('{'),
            "string keys render as object: {json}"
        );
        let back: std::collections::BTreeMap<String, Vec<i64>> = from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn options_round_trip() {
        let v: Vec<Option<f64>> = vec![Some(1.5), None];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1.5,null]");
        let back: Vec<Option<f64>> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<bool>("tru").is_err());
        assert!(from_str::<Vec<i64>>("[1, 2").is_err());
        assert!(from_str::<i64>("1 2").is_err());
    }

    #[test]
    fn rejects_bad_surrogate_pairs_without_panicking() {
        // High surrogate followed by a non-low-surrogate escape.
        assert!(from_str::<String>(r#""\ud800A""#).is_err());
        // Unpaired high surrogate at end of string.
        assert!(from_str::<String>(r#""\ud800""#).is_err());
        // Low surrogate on its own is also invalid.
        assert!(from_str::<String>(r#""\udc00""#).is_err());
    }
}
